(** Content-addressed chunk store.

    The store maps chunk identity (SHA-256 of encoded bytes) to the encoded
    bytes; writing a chunk whose identity is already present is a no-op that
    is counted as a {e dedup hit}.  This is where ForkBase's storage savings
    materialize: POS-Tree pages shared between versions, branches, or whole
    datasets occupy physical space exactly once (paper §II-C, §III-A).

    Backends are packaged as a record of operations so that higher layers
    are agnostic to where bytes live (memory, directory of files, or a
    deliberately malicious wrapper in the tamper-evidence experiments). *)

type stats = {
  physical_chunks : int;  (** distinct chunks held *)
  physical_bytes : int;   (** sum of encoded sizes of distinct chunks *)
  puts : int;             (** put calls *)
  dedup_hits : int;       (** puts that found the chunk already present *)
  logical_bytes : int;    (** sum of encoded sizes over all puts *)
  gets : int;             (** get calls *)
}

val empty_stats : stats
val pp_stats : Format.formatter -> stats -> unit

val dedup_ratio : stats -> float
(** [logical_bytes / physical_bytes], floored at 1.0 — [logical_bytes]
    only counts the current session's puts, so a freshly reopened durable
    store reports 1.0 until it writes. *)

exception Transient of string
(** A storage fault that may succeed on retry (flaky medium, lost RPC,
    injected by {!Faulty_store}).  Backends raise it from any operation;
    {!Resilient_store} absorbs it with bounded retries, and the API layer
    surfaces what escapes as a typed [Errors.Transient] value. *)

type t = {
  name : string;
  put : Chunk.t -> Fb_hash.Hash.t;
  get : Fb_hash.Hash.t -> Chunk.t option;
  get_raw : Fb_hash.Hash.t -> string option;
    (** Encoded bytes as stored, {e without} integrity checking — the raw
        view a malicious provider would serve.  Verification layers hash
        these bytes themselves. *)
  peek : Fb_hash.Hash.t -> string option;
    (** Same bytes as [get_raw] but {e outside} the accounting: does not
        bump the [gets] counter.  Internal maintenance passes (GC marking,
        scrub) read through here so sweeps do not skew workload stats. *)
  mem : Fb_hash.Hash.t -> bool;
  stats : unit -> stats;
  iter : (Fb_hash.Hash.t -> string -> unit) -> unit;
    (** Iterate over (identity, encoded bytes) of every stored chunk. *)
  delete : Fb_hash.Hash.t -> bool;
    (** Remove a chunk (garbage collection only); [true] if it existed. *)
}

val put : t -> Chunk.t -> Fb_hash.Hash.t
val get : t -> Fb_hash.Hash.t -> Chunk.t option
val peek : t -> Fb_hash.Hash.t -> string option

val get_exn : t -> Fb_hash.Hash.t -> Chunk.t
(** @raise Not_found if the chunk is absent. *)

val mem : t -> Fb_hash.Hash.t -> bool
val stats : t -> stats

val physical_bytes : t -> int
(** Shorthand for [(stats t).physical_bytes] — the quantity whose delta the
    Fig. 4 experiment reports. *)

val delete : t -> Fb_hash.Hash.t -> bool
(** Remove a chunk and, if it existed, notify every {!on_delete} listener.
    Maintenance passes (GC sweep, scrub quarantine) must delete through
    here rather than the raw record field so identity-keyed caches never
    serve data for chunks that are gone. *)

val on_delete : (Fb_hash.Hash.t -> unit) -> unit
(** Register a process-wide deletion hook, called with the identity of
    every chunk removed via {!delete}.  Used by the decoded-node cache for
    invalidation.  Listeners must not raise and must not call back into
    the store. *)
