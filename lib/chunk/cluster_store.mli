(** Consistent-hash cluster of chunk stores — W-way replication,
    failover reads, read repair, and rebalance on membership change.

    This is the routing tier of the paper's distributed layer (§II):
    chunk ids are placed on a hash ring of virtual nodes, each chunk is
    written to the [replicas] distinct members that own its ring
    position, and reads walk the owner list in preference order, failing
    over past members that are down, transiently failing, missing the
    chunk, or serving bytes that do not re-hash to the id.  A read
    satisfied by a non-first owner triggers {e read repair}: the healthy
    bytes are re-put to every owner that could not serve them, so
    replica counts converge back to W under a workload alone.

    Members are plain {!Store.t}s, so the same engine clusters local
    stores in tests ({!Mem_store}, {!Faulty_store}) and real
    [forkbase serve] nodes through [Fb_net.Remote.chunk_store] in
    production — the store neither knows nor cares where members live.

    Placement is a pure function of (chunk id, ring): {!ring_of} and
    {!owner_ranks} are exposed so tests can check routing determinism
    and the rebalance delta independently of any live cluster.

    Fault discipline (mirrors {!Resilient_store}): {!Store.Transient}
    from a member is retried [max_retries] times with jittered
    exponential backoff against that member, then the next owner is
    tried; a put that reaches {e no} owner raises {!Store.Transient}
    (the write cannot be placed); permanent refusals (corrupt bytes) are
    never retried against the same member.

    Per-node outcomes are exported as observability gauges
    [cluster.<name>.node.<i>.{up,puts,failovers,repairs}]. *)

type t

(** {1 Pure placement} *)

val ring_of : virtual_nodes:int -> string list -> (string * int) array
(** [virtual_nodes] points per member on the ring, keyed by the SHA-256
    of ["<member-name>#<v>"] rendered in hex — the same key space chunk
    ids live in.  Sorted; the [int] is the member's index in the input
    list. *)

val owner_ranks :
  ring:(string * int) array -> replicas:int -> Fb_hash.Hash.t -> int list
(** The first [replicas] {e distinct} member indices clockwise from the
    id's ring position, preference order.  Deterministic in (id, ring)
    only. *)

(** {1 Cluster lifecycle} *)

val create :
  ?name:string ->
  ?replicas:int ->
  ?virtual_nodes:int ->
  ?max_retries:int ->
  ?backoff_s:float ->
  members:(string * Store.t) list ->
  unit ->
  t
(** Defaults: [name = "cluster"], [replicas = 2] (clamped to the member
    count), [virtual_nodes = 64], [max_retries = 2], [backoff_s = 0.]
    (no sleeping between retries — pass e.g. [0.005] in production). *)

val store : t -> Store.t
(** The routing store.  [iter] unions distinct chunks across up members;
    [delete] addresses every member (GC must reach all replicas);
    [stats] aggregates this cluster handle's own traffic. *)

val owners : t -> Fb_hash.Hash.t -> string list
(** Current owner members of a chunk id, preference order. *)

val set_down : t -> string -> bool -> unit
(** Administratively mark a member down/up: a down member is skipped by
    reads and writes without waiting for its store to fail.  Members
    that raise are {e not} auto-marked — liveness belongs to the
    caller/harness; the per-op failover already routes around them. *)

val add_member : t -> string * Store.t -> unit
(** Extend the ring.  Only chunks whose owner set changes are affected;
    run {!rebalance} to move that delta. *)

val remove_member : t -> string -> unit
(** Drop a member from the ring (its store is not closed).  Chunks it
    owned acquire a new owner; {!rebalance} re-replicates them. *)

type rebalance_report = {
  scanned : int;        (** distinct chunks examined *)
  moved_chunks : int;   (** copies created on new owners *)
  moved_bytes : int;
  unplaceable : int;    (** chunks whose owners were all down/failing *)
}

val rebalance : t -> rebalance_report
(** Walk every distinct chunk reachable through any up member and copy
    it to owners that lack it.  After a membership change this moves
    exactly the hash-ring delta — chunks whose owner set is unchanged
    already reside on their owners and are skipped.  Never deletes:
    copies on former owners stay until GC. *)

(** {1 Introspection} *)

type node_stats = {
  node : string;
  up : bool;
  puts : int;        (** successful replica writes to this member *)
  failovers : int;   (** reads this member failed to serve (skipped past) *)
  repairs : int;     (** read-repair copies written to this member *)
  chunks : int;      (** member-reported physical chunks *)
  bytes : int;
}

type cluster_stats = {
  failover_reads : int;  (** reads served by a non-first owner *)
  repaired : int;        (** read-repair copies written, total *)
  rejected : int;        (** replica reads refused by the hash check *)
  under_replicated : int;(** puts acknowledged by fewer than W owners *)
  unavailable : int;     (** ops that found no live owner at all *)
}

val node_stats : t -> node_stats list
val cluster_stats : t -> cluster_stats
val members : t -> string list
val replicas : t -> int

val close : t -> unit
(** Unregister the cluster's observability gauges.  Member stores are
    not touched — they belong to the caller. *)
