module Hash = Fb_hash.Hash

type stats = {
  mutable retries : int;
  mutable absorbed : int;
  mutable gave_up : int;
  mutable fallback_reads : int;
  mutable heals : int;
  mutable corrupt_rejected : int;
  mutable unrecovered : int;
}

(* Exponent capped so the shift cannot overflow and one retry cannot
   sleep past [max_backoff_s]; [jitter] (a uniform draw in [0,1)) scales
   the delay into [0.5x, 1.5x) so a fleet of replicas hitting the same
   fault does not retry in lockstep. *)
let max_exponent = 16

let backoff_duration ?(max_backoff_s = 1.0) ~backoff_s ~jitter attempt =
  let e = min (max attempt 0) max_exponent in
  let d = backoff_s *. float_of_int (1 lsl e) *. (0.5 +. jitter) in
  Float.min d max_backoff_s

let wrap ?replica ?(max_retries = 4) ?(backoff_s = 0.0) ?(max_backoff_s = 1.0)
    ?(max_total_backoff_s = 30.0) ?(jitter_seed = 0x7e5171e4L)
    ?(verify_reads = true) (primary : Store.t) =
  let st =
    { retries = 0; absorbed = 0; gave_up = 0; fallback_reads = 0; heals = 0;
      corrupt_rejected = 0; unrecovered = 0 }
  in
  let prng = Fb_hash.Prng.create jitter_seed in
  let slept = ref 0.0 in
  let sleep_backoff attempt =
    if backoff_s > 0.0 then begin
      let jitter = Fb_hash.Prng.next_float prng in
      let d = backoff_duration ~max_backoff_s ~backoff_s ~jitter attempt in
      (* Clamp the lifetime sleep budget so a persistently failing store
         degrades to fast-fail instead of stalling callers forever. *)
      let d = Float.min d (Float.max 0.0 (max_total_backoff_s -. !slept)) in
      if d > 0.0 then begin
        slept := !slept +. d;
        Unix.sleepf d
      end
    end
  in
  let with_retries f =
    let rec go attempt =
      match f () with
      | r ->
        if attempt > 0 then st.absorbed <- st.absorbed + 1;
        r
      | exception Store.Transient _ when attempt < max_retries ->
        st.retries <- st.retries + 1;
        sleep_backoff attempt;
        go (attempt + 1)
      | exception (Store.Transient _ as e) ->
        st.gave_up <- st.gave_up + 1;
        raise e
    in
    go 0
  in
  let healthy id raw = (not verify_reads) || Hash.equal (Hash.of_string raw) id in
  (* One primary read outcome; corrupt bytes count as a retryable failure
     because flipped bits on the read path (bus, cache, page) heal on the
     next attempt, while latent media damage keeps failing and falls
     through to the replica. *)
  let read_primary id =
    let corrupt_seen = ref false in
    let rec go attempt =
      match primary.Store.get_raw id with
      | None -> if !corrupt_seen then `Corrupt else `Absent
      | Some raw when healthy id raw ->
        if attempt > 0 then st.absorbed <- st.absorbed + 1;
        `Good raw
      | Some _ ->
        st.corrupt_rejected <- st.corrupt_rejected + 1;
        corrupt_seen := true;
        retry attempt
      | exception Store.Transient _ when attempt < max_retries ->
        st.retries <- st.retries + 1;
        retry attempt
      | exception (Store.Transient _ as e) ->
        st.gave_up <- st.gave_up + 1;
        raise e
    and retry attempt =
      if attempt < max_retries then begin
        sleep_backoff attempt;
        go (attempt + 1)
      end
      else `Corrupt
    in
    go 0
  in
  let heal id raw =
    (* Content-addressed [put] skips names that already exist, so a
       damaged copy must be deleted before the healthy bytes go back. *)
    match Chunk.decode raw with
    | Error _ -> ()
    | Ok chunk -> (
      ignore (primary.Store.delete id);
      match with_retries (fun () -> primary.Store.put chunk) with
      | _ -> st.heals <- st.heals + 1
      | exception Store.Transient _ -> ())
  in
  let from_replica ~damaged id =
    match replica with
    | None ->
      if damaged then st.unrecovered <- st.unrecovered + 1;
      None
    | Some (r : Store.t) -> (
      match with_retries (fun () -> r.Store.get_raw id) with
      | Some raw when Hash.equal (Hash.of_string raw) id ->
        st.fallback_reads <- st.fallback_reads + 1;
        if damaged then heal id raw;
        Some raw
      | Some _ | None ->
        if damaged then st.unrecovered <- st.unrecovered + 1;
        None)
  in
  let get_raw id =
    match read_primary id with
    | `Good raw -> Some raw
    | `Absent -> from_replica ~damaged:false id
    | `Corrupt -> from_replica ~damaged:true id
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok chunk -> Some chunk | Error _ -> None)
  in
  let put chunk =
    let id = with_retries (fun () -> primary.Store.put chunk) in
    (match replica with
    | None -> ()
    | Some r -> (
      try ignore (r.Store.put chunk) with Store.Transient _ -> ()));
    id
  in
  let peek id =
    let checked raw = if healthy id raw then Some raw else None in
    match Option.bind (primary.Store.peek id) checked with
    | Some raw -> Some raw
    | None -> (
      match replica with
      | None -> None
      | Some r ->
        Option.bind (r.Store.peek id) (fun raw ->
            if Hash.equal (Hash.of_string raw) id then Some raw else None))
  in
  let mem id =
    with_retries (fun () -> primary.Store.mem id)
    || (match replica with Some r -> r.Store.mem id | None -> false)
  in
  ( { Store.name = "resilient:" ^ primary.Store.name;
      put; get; get_raw; peek; mem;
      stats = primary.Store.stats;
      iter = primary.Store.iter;
      delete = primary.Store.delete },
    st )
