(** Self-healing wrapper: retries, replica fallback, read repair.

    [wrap primary] returns a store that absorbs {!Store.Transient}
    failures with bounded exponential-backoff retries, and — when a
    [replica] is supplied — serves reads the primary cannot, re-putting
    the healthy bytes into the primary so the damage does not survive the
    read (self-healing reads).  Writes go to the primary first and are
    mirrored to the replica best-effort.

    Read path, in order:

    + read the primary, retrying on {!Store.Transient}; bytes failing the
      hash check count as a retryable failure too (a flipped bit on the
      way out heals on re-read, latent media damage does not);
    + still damaged or absent → read the replica (verified against the
      chunk id unconditionally);
    + replica had healthy bytes for a {e damaged} primary chunk →
      delete-then-put them back into the primary ([delete] first, because
      a content-addressed [put] skips names that already exist).

    The clean path does one extra hash per read at most ([verify_reads]),
    and none when the primary is already a {!Verified_store} (pass
    [~verify_reads:false]).

    After [max_retries] extra attempts a transient failure is re-raised
    for the caller (Forkbase surfaces it as a typed [Errors.Transient]).

    [iter], [delete] and [stats] address the primary only. *)

type stats = {
  mutable retries : int;  (** extra attempts made after a transient fault *)
  mutable absorbed : int;  (** ops that succeeded after at least one retry *)
  mutable gave_up : int;  (** ops re-raised after exhausting [max_retries] *)
  mutable fallback_reads : int;  (** reads served by the replica *)
  mutable heals : int;  (** healthy chunks re-put into the primary *)
  mutable corrupt_rejected : int;  (** primary reads failing the hash check *)
  mutable unrecovered : int;  (** damaged reads no replica could satisfy *)
}

val backoff_duration :
  ?max_backoff_s:float -> backoff_s:float -> jitter:float -> int -> float
(** [backoff_duration ~backoff_s ~jitter attempt] is the pre-retry sleep
    for the given (0-based) attempt: [backoff_s * 2^min(attempt, 16) *
    (0.5 + jitter)], capped at [max_backoff_s] (default [1.0]).  [jitter]
    is a uniform draw in [\[0, 1)]; the exponent cap keeps the shift from
    overflowing on large attempt counts.  Exposed for tests. *)

val wrap :
  ?replica:Store.t ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  ?max_total_backoff_s:float ->
  ?jitter_seed:int64 ->
  ?verify_reads:bool ->
  Store.t ->
  Store.t * stats
(** Defaults: no replica, [max_retries = 4], [backoff_s = 0.] (no
    sleeping — tests stay fast; production might pass [0.01]),
    [verify_reads = true].  Each retry sleeps {!backoff_duration} with
    jitter drawn from a {!Fb_hash.Prng} seeded with [jitter_seed]
    (deterministic per wrapper, decorrelated across replicas given
    distinct seeds); one sleep never exceeds [max_backoff_s] (default
    [1.0]) and the wrapper's lifetime sleep total is clamped to
    [max_total_backoff_s] (default [30.0]) — past the budget, retries
    continue without sleeping. *)
