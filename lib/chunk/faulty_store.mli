(** Deterministic fault injection for any {!Store.t}.

    Wraps a store so that reads and writes misbehave in the ways real
    storage media do — transiently failing operations, flipping bits on
    the read path, tearing writes so only a prefix of the chunk survives,
    and crashing mid-write — all driven by a seeded {!Fb_hash.Prng}, so a
    given [seed] replays the exact same fault schedule on the exact same
    operation sequence.

    Fault model:

    - {b transient} read/write failures raise {!Store.Transient}; a retry
      may succeed (the next draw is independent).
    - {b bit flips} corrupt bytes on the way out of [get]/[get_raw] only;
      the stored bytes stay healthy, so a retry can return clean data.
    - {b torn writes} persist a strict prefix of the encoded chunk under
      its declared identity.  Like a real content-addressed store, a
      later re-put of the same chunk sees the name already taken and
      skips the write — only [delete] followed by [put] repairs it.
    - {b torn appends} persist the full length but with a garbage tail:
      from a seeded cut point onward the bytes are stale junk — the shape
      a power cut leaves at the end of an append-only log, where the tail
      sectors were never written.  Re-put semantics match torn writes.
    - {b crash} ([crash_on_put = Some n]) tears the [n]-th put and raises
      {!Crash}, simulating the process dying mid-write.

    [peek] and [mem] are maintenance interfaces and inject no faults
    (they do expose torn bytes, which is what a scrubber must see). *)

exception Crash
(** Raised by the [crash_on_put] trigger after persisting a torn chunk. *)

type config = {
  seed : int64;  (** PRNG seed; same seed + same op sequence = same faults *)
  transient_read_p : float;  (** probability a read raises {!Store.Transient} *)
  transient_put_p : float;  (** probability a put raises {!Store.Transient} *)
  bit_flip_p : float;  (** probability a served read has one bit flipped *)
  torn_write_p : float;  (** probability a new put persists only a prefix *)
  torn_append_p : float;
      (** probability a new put persists with a garbage tail (partial
          append: full length, stale bytes past a seeded cut point) *)
  fail_nth_read : int option;  (** force exactly the [n]-th read to fail *)
  crash_on_put : int option;  (** tear the [n]-th put, then raise {!Crash} *)
}

val calm : config
(** All probabilities zero, no triggers — a transparent wrapper.  Use
    [{ calm with ... }] to enable individual faults. *)

type counters = {
  mutable reads : int;
  mutable puts : int;
  mutable transient_reads : int;
  mutable transient_puts : int;
  mutable bit_flips : int;
  mutable torn_writes : int;
  mutable torn_appends : int;
  mutable crashes : int;
}
(** One counter per injected fault kind, plus total reads/puts observed. *)

val total_faults : counters -> int
(** Sum of all injected faults (excludes the read/put op totals). *)

val wrap : config -> Store.t -> Store.t * counters
(** [wrap config inner] returns the fault-injecting store and its live
    fault counters.  Torn bytes are held in an overlay and never written
    into [inner], so [inner] itself stays healthy; [iter], [mem], [peek]
    and [delete] all see the overlay as if it were physical storage. *)
