(** Immutable chunks — the unit of storage and deduplication (paper §II-C).

    A chunk is a kind tag plus an opaque payload.  Its identity is the
    SHA-256 of its encoded bytes; equal content means equal identity means
    stored once.  Chunks never change after construction. *)

type kind =
  | Index        (** POS-Tree internal node: (split key, child id) entries *)
  | Leaf_map     (** POS-Tree leaf holding sorted (key, value) entries *)
  | Leaf_set     (** POS-Tree leaf holding sorted keys *)
  | Leaf_list    (** sequence-tree leaf holding positional elements *)
  | Leaf_blob    (** raw byte segment of a blob *)
  | Seq_index    (** sequence-tree internal node: (count, child id) entries *)
  | Fnode        (** version node of the derivation DAG (paper §II-D) *)

val kind_to_string : kind -> string
val kind_of_tag : int -> kind option
val kind_tag : kind -> int
val equal_kind : kind -> kind -> bool
val pp_kind : Format.formatter -> kind -> unit

type t = private {
  kind : kind;
  payload : string;
  mutable enc : string option;
      (** memoized {!encode}; [private] keeps it write-protected outside *)
  mutable id : Fb_hash.Hash.t option;  (** memoized {!hash} *)
}

val v : kind -> string -> t
(** Construct a chunk from a kind and an encoded payload. *)

val encode : t -> string
(** Canonical on-storage bytes: magic, format version, kind tag, payload.
    Computed once per chunk value and memoized. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects bad magic, unknown versions and kinds.
    The validated input seeds the {!encode} memo, so decode → re-encode
    round-trips copy nothing. *)

val hash : t -> Fb_hash.Hash.t
(** Identity: SHA-256 of {!encode}.  Computed once per chunk value (header
    and payload are streamed through the incremental hash without
    materializing the encoding) and memoized, so put/verify/GC paths that
    all need the identity hash pay for it once. *)

val encoded_size : t -> int
(** Byte size of the encoded form (what the store accounts). *)

val pp : Format.formatter -> t -> unit
