module Hash = Fb_hash.Hash
module Prng = Fb_hash.Prng

exception Crash

type config = {
  seed : int64;
  transient_read_p : float;
  transient_put_p : float;
  bit_flip_p : float;
  torn_write_p : float;
  torn_append_p : float;
  fail_nth_read : int option;
  crash_on_put : int option;
}

let calm =
  { seed = 1L;
    transient_read_p = 0.0;
    transient_put_p = 0.0;
    bit_flip_p = 0.0;
    torn_write_p = 0.0;
    torn_append_p = 0.0;
    fail_nth_read = None;
    crash_on_put = None }

type counters = {
  mutable reads : int;
  mutable puts : int;
  mutable transient_reads : int;
  mutable transient_puts : int;
  mutable bit_flips : int;
  mutable torn_writes : int;
  mutable torn_appends : int;
  mutable crashes : int;
}

let total_faults c =
  c.transient_reads + c.transient_puts + c.bit_flips + c.torn_writes
  + c.torn_appends + c.crashes

let wrap config (inner : Store.t) =
  let rng = Prng.create config.seed in
  let c =
    { reads = 0; puts = 0; transient_reads = 0; transient_puts = 0;
      bit_flips = 0; torn_writes = 0; torn_appends = 0; crashes = 0 }
  in
  (* Damaged writes never reach [inner]: the torn bytes live here, served
     under the identity the caller was promised — exactly what a crashed
     non-atomic writer leaves on a real medium. *)
  let torn : string Hash.Tbl.t = Hash.Tbl.create 16 in
  let draw p = p > 0.0 && Prng.next_float rng < p in
  let flip_bit s =
    if String.length s = 0 then s
    else begin
      let b = Bytes.of_string s in
      let i = Prng.next_int rng (Bytes.length b) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.next_int rng 8)));
      Bytes.to_string b
    end
  in
  let tear s =
    (* A torn write persists only a prefix (always strictly shorter). *)
    if String.length s <= 1 then ""
    else String.sub s 0 (Prng.next_int rng (String.length s))
  in
  let garble_tail s =
    (* A torn append keeps the full length but the tail sectors never made
       it: from a seeded cut point onward the medium holds stale garbage.
       The byte at the cut is forced to differ, so the damage is certain
       (and deterministic under the seed). *)
    if String.length s = 0 then s
    else begin
      let b = Bytes.of_string s in
      let cut = Prng.next_int rng (Bytes.length b) in
      Bytes.set b cut
        (Char.chr
           (Char.code (Bytes.get b cut) lxor (1 + Prng.next_int rng 255)));
      for i = cut + 1 to Bytes.length b - 1 do
        Bytes.set b i (Char.chr (Prng.next_int rng 256))
      done;
      Bytes.to_string b
    end
  in
  let stored id =
    match Hash.Tbl.find_opt torn id with
    | Some bad -> Some bad
    | None -> inner.Store.peek id
  in
  let get_raw id =
    c.reads <- c.reads + 1;
    let forced =
      match config.fail_nth_read with Some n -> c.reads = n | None -> false
    in
    if forced || draw config.transient_read_p then begin
      c.transient_reads <- c.transient_reads + 1;
      raise (Store.Transient "injected: transient read failure")
    end;
    match inner.Store.get_raw id with
    | exception Not_found -> None
    | primary -> (
      let served =
        match Hash.Tbl.find_opt torn id with
        | Some bad -> Some bad
        | None -> primary
      in
      match served with
      | None -> None
      | Some raw ->
        if draw config.bit_flip_p then begin
          c.bit_flips <- c.bit_flips + 1;
          Some (flip_bit raw)
        end
        else Some raw)
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok chunk -> Some chunk | Error _ -> None)
  in
  let put chunk =
    c.puts <- c.puts + 1;
    if draw config.transient_put_p then begin
      c.transient_puts <- c.transient_puts + 1;
      raise (Store.Transient "injected: transient write failure")
    end;
    let id = Chunk.hash chunk in
    let crash =
      match config.crash_on_put with Some n -> c.puts = n | None -> false
    in
    if crash then begin
      if not (Hash.Tbl.mem torn id || inner.Store.mem id) then begin
        Hash.Tbl.replace torn id (tear (Chunk.encode chunk));
        c.torn_writes <- c.torn_writes + 1
      end;
      c.crashes <- c.crashes + 1;
      raise Crash
    end;
    if Hash.Tbl.mem torn id then
      (* The name exists (with damaged bytes): a content-addressed re-put
         skips the write, exactly like [File_store] would. *)
      id
    else if (not (inner.Store.mem id)) && draw config.torn_write_p then begin
      Hash.Tbl.replace torn id (tear (Chunk.encode chunk));
      c.torn_writes <- c.torn_writes + 1;
      id
    end
    else if (not (inner.Store.mem id)) && draw config.torn_append_p then begin
      Hash.Tbl.replace torn id (garble_tail (Chunk.encode chunk));
      c.torn_appends <- c.torn_appends + 1;
      id
    end
    else inner.Store.put chunk
  in
  let peek id = stored id in
  let mem id = Hash.Tbl.mem torn id || inner.Store.mem id in
  let iter f =
    inner.Store.iter f;
    Hash.Tbl.iter f torn
  in
  let delete id =
    if Hash.Tbl.mem torn id then begin
      Hash.Tbl.remove torn id;
      true
    end
    else inner.Store.delete id
  in
  let stats () =
    let s = inner.Store.stats () in
    let torn_bytes =
      Hash.Tbl.fold (fun _ raw acc -> acc + String.length raw) torn 0
    in
    { s with
      Store.physical_chunks = s.Store.physical_chunks + Hash.Tbl.length torn;
      physical_bytes = s.Store.physical_bytes + torn_bytes }
  in
  ( { Store.name = Printf.sprintf "faulty(%Ld):%s" config.seed inner.Store.name;
      put; get; get_raw; peek; mem; stats; iter; delete },
    c )
