type stats = {
  physical_chunks : int;
  physical_bytes : int;
  puts : int;
  dedup_hits : int;
  logical_bytes : int;
  gets : int;
}

let empty_stats =
  { physical_chunks = 0;
    physical_bytes = 0;
    puts = 0;
    dedup_hits = 0;
    logical_bytes = 0;
    gets = 0 }

let dedup_ratio s =
  (* [logical_bytes] counts this session's puts only; a freshly reopened
     durable store has written nothing yet, so the ratio floors at 1. *)
  if s.physical_bytes = 0 || s.logical_bytes < s.physical_bytes then 1.0
  else float_of_int s.logical_bytes /. float_of_int s.physical_bytes

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>chunks: %d@ physical: %d B@ logical: %d B@ puts: %d (dedup hits: \
     %d)@ gets: %d@ dedup ratio: %.2fx@]"
    s.physical_chunks s.physical_bytes s.logical_bytes s.puts s.dedup_hits
    s.gets (dedup_ratio s)

exception Transient of string

type t = {
  name : string;
  put : Chunk.t -> Fb_hash.Hash.t;
  get : Fb_hash.Hash.t -> Chunk.t option;
  get_raw : Fb_hash.Hash.t -> string option;
  peek : Fb_hash.Hash.t -> string option;
  mem : Fb_hash.Hash.t -> bool;
  stats : unit -> stats;
  iter : (Fb_hash.Hash.t -> string -> unit) -> unit;
  delete : Fb_hash.Hash.t -> bool;
}

let put t c = t.put c
let get t h = t.get h
let peek t h = t.peek h

(* Caches keyed by chunk identity (e.g. the POS-Tree decoded-node cache)
   register here so maintenance deletions invalidate them.  The registry is
   global rather than per-store: over-invalidating across store instances
   is harmless, serving a stale decode after a delete is not. *)
let delete_listeners : (Fb_hash.Hash.t -> unit) list ref = ref []
let on_delete f = delete_listeners := f :: !delete_listeners

let delete t id =
  let existed = t.delete id in
  if existed then List.iter (fun f -> f id) !delete_listeners;
  existed

let get_exn t h =
  match t.get h with Some c -> c | None -> raise Not_found

let mem t h = t.mem h
let stats t = t.stats ()
let physical_bytes t = (t.stats ()).physical_bytes
