module Hash = Fb_hash.Hash

type violations = {
  mutable rejected_reads : int;
  mutable last_offender : Hash.t option;
}

let wrap ?(once = false) (inner : Store.t) =
  let v = { rejected_reads = 0; last_offender = None } in
  (* [once] mode: ids whose served bytes already passed the hash check.
     Content addressing makes a healthy chunk immutable, so re-verifying
     it guards only against the medium mutating underneath us — the
     paranoid default; first-read verification is the cheap clean path
     for the media-fault (not malicious-provider) threat model. *)
  (* Concurrent readers race to record first-read verdicts; the table is
     guarded so a resize cannot tear under a parallel probe (the re-hash
     itself runs outside the lock — verifying twice is harmless). *)
  let seen : unit Hash.Tbl.t = Hash.Tbl.create 64 in
  let seen_lock = Mutex.create () in
  let check_bytes id raw =
    if once && Mutex.protect seen_lock (fun () -> Hash.Tbl.mem seen id) then
      Some raw
    else if Hash.equal (Hash.of_string raw) id then begin
      if once then
        Mutex.protect seen_lock (fun () -> Hash.Tbl.replace seen id ());
      Some raw
    end
    else begin
      v.rejected_reads <- v.rejected_reads + 1;
      v.last_offender <- Some id;
      None
    end
  in
  let checked id =
    match inner.Store.get_raw id with
    | None -> None
    | Some raw -> check_bytes id raw
  in
  let checked_peek id =
    match inner.Store.peek id with
    | None -> None
    | Some raw -> check_bytes id raw
  in
  let get id =
    match checked id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  (* [mem] must not vouch for bytes a read would refuse: answer through the
     checked (non-counting) path so a tampered chunk is absent everywhere. *)
  let mem id = checked_peek id <> None in
  let delete id =
    Mutex.protect seen_lock (fun () -> Hash.Tbl.remove seen id);
    inner.Store.delete id
  in
  ( { inner with
      Store.name = "verified:" ^ inner.Store.name;
      get;
      get_raw = checked;
      peek = checked_peek;
      mem;
      delete },
    v )
