module Hash = Fb_hash.Hash
module Crc32 = Fb_hash.Crc32
module Obs = Fb_obs.Obs

(* On-disk layout (see the .mli for the contract):
     <root>/gen-<N>.log   header, then CRC-sealed records
     <root>/gen-<N>.idx   checkpoint of the (id -> off, len) index
     <root>/CURRENT       ASCII generation number, swapped atomically

   Log header:  magic (8) | generation (8, BE)
   Record:      kind (1) | length (4, BE) | id (32) | payload | crc32 (4, BE)
                kind 0 = append, 1 = delete tombstone (length 0);
                the CRC covers kind..payload.
   Checkpoint:  magic (8) | generation (8) | covered (8) | count (8)
                | count * (id 32, off 8, len 8) | crc32 (4)
                [covered] is the log prefix the entries describe; replay
                resumes there. *)

let log_magic = "FBLOG01\n"
let idx_magic = "FBLOGIX\n"
let header_size = 16
let rec_head_size = 1 + 4 + 32 (* kind, length, id *)
let rec_overhead = rec_head_size + 4 (* + crc *)
let max_payload = 1 lsl 30

type config = {
  fsync : bool;
  group_chunks : int;
  group_window_s : float;
  checkpoint_bytes : int;
  compactor : bool;
  tick_s : float;
  auto_compact : float;
  compact_min_bytes : int;
}

let default_config =
  { fsync = true;
    group_chunks = 64;
    group_window_s = 0.01;
    checkpoint_bytes = 1 lsl 20;
    compactor = false;
    tick_s = 0.05;
    auto_compact = 0.5;
    compact_min_bytes = 1 lsl 16 }

type counters = {
  mutable appends : int;
  mutable deletes : int;
  mutable flushes : int;
  mutable checkpoints : int;
  mutable compactions : int;
  mutable auto_compactions : int;
  mutable replayed_records : int;
  mutable truncated_bytes : int;
  mutable background_errors : int;
}

type entry = { off : int; len : int } (* payload position in the log file *)

type compact_stage = After_data | Before_switch | After_switch

type t = {
  root : string;
  config : config;
  lock : Mutex.t;
  mutable gen : int;
  mutable wfd : Unix.file_descr;
  mutable rfd : Unix.file_descr;
  mutable file_len : int;
  mutable synced_len : int;
  mutable ckpt_len : int; (* file_len as of the last checkpoint *)
  mutable pending : int; (* records appended since the last sync *)
  mutable pending_since : float;
  index : entry Hash.Tbl.t;
  mutable live_payload : int; (* sum of live entry lengths *)
  mutable closed : bool;
  mutable thread : Thread.t option;
  c : counters;
  (* Store.t session stats *)
  mutable puts : int;
  mutable gets : int;
  mutable dedup_hits : int;
  mutable logical_bytes : int;
}

(* ------------------------- small file helpers ------------------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file_atomic ~fsync path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     if fsync then begin
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc)
     end;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

let read_file_opt path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Some data
  | exception (Sys_error _ | End_of_file) -> None

let write_all fd bytes =
  let len = Bytes.length bytes in
  let n = ref 0 in
  while !n < len do
    n := !n + Unix.write fd bytes !n (len - !n)
  done

let u32be s pos =
  Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

let u64be s pos = Int64.to_int (String.get_int64_be s pos)

(* ------------------------- paths ------------------------- *)

let log_file root gen = Filename.concat root (Printf.sprintf "gen-%d.log" gen)
let idx_file root gen = Filename.concat root (Printf.sprintf "gen-%d.idx" gen)
let current_file root = Filename.concat root "CURRENT"

let gen_of_filename name =
  if String.length name > 8 && String.sub name 0 4 = "gen-" then
    let stem = Filename.remove_extension name in
    let ext = Filename.extension name in
    if ext = ".log" || ext = ".idx" then
      int_of_string_opt (String.sub stem 4 (String.length stem - 4))
    else None
  else None

(* ------------------------- record encoding ------------------------- *)

let encode_record ~kind ~id ~payload =
  let len = String.length payload in
  let b = Bytes.create (rec_overhead + len) in
  Bytes.set b 0 (Char.chr kind);
  Bytes.set_int32_be b 1 (Int32.of_int len);
  Bytes.blit_string (Hash.to_raw id) 0 b 5 32;
  Bytes.blit_string payload 0 b rec_head_size len;
  let crc = Crc32.update_bytes_sub Crc32.empty b ~pos:0 ~len:(rec_head_size + len) in
  Bytes.set_int32_be b (rec_head_size + len) (Int32.of_int crc);
  b

let header_bytes gen =
  let b = Bytes.create header_size in
  Bytes.blit_string log_magic 0 b 0 8;
  Bytes.set_int64_be b 8 (Int64.of_int gen);
  b

(* ------------------------- replay ------------------------- *)

(* Scan sealed records from [start]; [apply] sees each one in log order.
   Returns the offset one past the last sealed record — everything after
   is a torn tail.  [verify_hash] additionally re-hashes append payloads
   (fsck); replay proper trusts the CRC seal. *)
let scan_records path ~start ~size ?(verify_hash = fun _ _ -> ()) apply =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic start;
      let pos = ref start in
      let records = ref 0 in
      let sealed = ref true in
      while !sealed do
        if !pos + rec_overhead > size then sealed := false
        else begin
          match really_input_string ic rec_head_size with
          | exception End_of_file -> sealed := false
          | head ->
            let kind = Char.code head.[0] in
            let len = u32be head 1 in
            if
              kind > 1 || len > max_payload
              || (kind = 1 && len <> 0)
              || !pos + rec_overhead + len > size
            then sealed := false
            else begin
              match
                let payload = really_input_string ic len in
                let stored_crc = u32be (really_input_string ic 4) 0 in
                (payload, stored_crc)
              with
              | exception End_of_file -> sealed := false
              | payload, stored_crc ->
                let crc =
                  Crc32.update_sub
                    (Crc32.update_sub Crc32.empty head ~pos:0 ~len:rec_head_size)
                    payload ~pos:0 ~len
                in
                if crc <> stored_crc then sealed := false
                else begin
                  let id = Hash.of_raw_exn (String.sub head 5 32) in
                  if kind = 0 then verify_hash id payload;
                  apply ~kind ~id ~off:(!pos + rec_head_size) ~len ~payload;
                  pos := !pos + rec_overhead + len;
                  incr records
                end
            end
        end
      done;
      (!pos, !records))

(* ------------------------- checkpoint index ------------------------- *)

let write_checkpoint_file ~fsync path ~gen ~covered index =
  let count = Hash.Tbl.length index in
  let b = Buffer.create (36 + (count * 48)) in
  Buffer.add_string b idx_magic;
  let add64 v =
    let s = Bytes.create 8 in
    Bytes.set_int64_be s 0 (Int64.of_int v);
    Buffer.add_bytes b s
  in
  add64 gen;
  add64 covered;
  add64 count;
  Hash.Tbl.iter
    (fun id e ->
      Buffer.add_string b (Hash.to_raw id);
      add64 e.off;
      add64 e.len)
    index;
  let body = Buffer.contents b in
  let crc = Crc32.string body in
  let s = Bytes.create 4 in
  Bytes.set_int32_be s 0 (Int32.of_int crc);
  write_file_atomic ~fsync path (body ^ Bytes.to_string s)

(* Returns [Some (covered, entries)] when the checkpoint verifies and
   describes a prefix of the current log file; anything suspicious makes
   recovery fall back to a full replay. *)
let load_checkpoint path ~gen ~file_size =
  match read_file_opt path with
  | None -> None
  | Some raw ->
    let n = String.length raw in
    (* Header: magic(8) gen(8) covered(8) count(8) = 32 bytes, then
       count * (id 32, off 8, len 8), then the CRC. *)
    if n < 32 + 4 then None
    else if not (String.equal (String.sub raw 0 8) idx_magic) then None
    else if Crc32.update_sub Crc32.empty raw ~pos:0 ~len:(n - 4) <> u32be raw (n - 4)
    then None
    else begin
      let g = u64be raw 8 in
      let covered = u64be raw 16 in
      let count = u64be raw 24 in
      if
        g <> gen || count < 0
        || n <> 32 + (count * 48) + 4
        || covered < header_size || covered > file_size
      then None
      else begin
        let entries = Hash.Tbl.create (max 16 count) in
        let ok = ref true in
        (try
           for i = 0 to count - 1 do
             let base = 32 + (i * 48) in
             let id = Hash.of_raw_exn (String.sub raw base 32) in
             let off = u64be raw (base + 32) in
             let len = u64be raw (base + 40) in
             if off < header_size || len < 0 || off + len > covered then
               ok := false;
             Hash.Tbl.replace entries id { off; len }
           done
         with _ -> ok := false);
        if !ok then Some (covered, entries) else None
      end
    end

(* ------------------------- observability ------------------------- *)

let register_gauges t =
  let g name f = Obs.gauge ("log." ^ t.root ^ "." ^ name) f in
  let gi name f = g name (fun () -> float_of_int (f ())) in
  gi "generation" (fun () -> t.gen);
  gi "file_bytes" (fun () -> t.file_len);
  gi "synced_bytes" (fun () -> t.synced_len);
  gi "live_chunks" (fun () -> Hash.Tbl.length t.index);
  gi "live_bytes" (fun () -> t.live_payload);
  gi "garbage_bytes" (fun () ->
      t.file_len - header_size - t.live_payload
      - (rec_overhead * Hash.Tbl.length t.index));
  gi "appends" (fun () -> t.c.appends);
  gi "deletes" (fun () -> t.c.deletes);
  gi "flushes" (fun () -> t.c.flushes);
  gi "checkpoints" (fun () -> t.c.checkpoints);
  gi "compactions" (fun () -> t.c.compactions);
  gi "auto_compactions" (fun () -> t.c.auto_compactions);
  gi "replayed_records" (fun () -> t.c.replayed_records);
  gi "truncated_bytes" (fun () -> t.c.truncated_bytes);
  gi "background_errors" (fun () -> t.c.background_errors)

(* ------------------------- locked core ------------------------- *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let garbage_locked t =
  t.file_len - header_size - t.live_payload
  - (rec_overhead * Hash.Tbl.length t.index)

let checkpoint_locked t =
  write_checkpoint_file ~fsync:t.config.fsync (idx_file t.root t.gen)
    ~gen:t.gen ~covered:t.synced_len t.index;
  t.ckpt_len <- t.synced_len;
  t.c.checkpoints <- t.c.checkpoints + 1

(* The group commit point: push appended records to stable storage, then
   checkpoint if enough log has accumulated since the last one.  The
   checkpoint can only cover a synced prefix — its entries must never
   point past what a power cut can preserve. *)
let sync_locked t =
  if t.synced_len < t.file_len || t.pending > 0 then begin
    if t.config.fsync then Unix.fsync t.wfd;
    t.synced_len <- t.file_len;
    t.pending <- 0;
    t.c.flushes <- t.c.flushes + 1
  end;
  if t.synced_len - t.ckpt_len >= t.config.checkpoint_bytes then
    checkpoint_locked t

let maybe_group_commit_locked t =
  t.pending <- t.pending + 1;
  if t.pending = 1 then t.pending_since <- Unix.gettimeofday ();
  if
    t.pending >= t.config.group_chunks
    || Unix.gettimeofday () -. t.pending_since >= t.config.group_window_s
  then sync_locked t

let append_record_locked t ~kind ~id ~payload =
  let b = encode_record ~kind ~id ~payload in
  write_all t.wfd b;
  let payload_off = t.file_len + rec_head_size in
  t.file_len <- t.file_len + Bytes.length b;
  maybe_group_commit_locked t;
  payload_off

let pread_locked t off len =
  match
    ignore (Unix.lseek t.rfd off Unix.SEEK_SET);
    let b = Bytes.create len in
    let n = ref 0 in
    let eof = ref false in
    while (not !eof) && !n < len do
      let r = Unix.read t.rfd b !n (len - !n) in
      if r = 0 then eof := true else n := !n + r
    done;
    if !n < len then None else Some (Bytes.unsafe_to_string b)
  with
  | r -> r
  | exception Unix.Unix_error _ -> None

let ensure_open t = if t.closed then failwith ("log store closed: " ^ t.root)

(* ------------------------- recovery / open ------------------------- *)

let valid_header path gen =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if in_channel_length ic < header_size then `Short
        else
          let h = really_input_string ic header_size in
          if
            String.equal (String.sub h 0 8) log_magic
            && u64be h 8 = gen
          then `Ok
          else `Bad)
  with
  | v -> v
  | exception (Sys_error _ | End_of_file) -> `Short

let init_generation root gen =
  let path = log_file root gen in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd (header_bytes gen);
      Unix.fsync fd);
  write_file_atomic ~fsync:true (current_file root) (string_of_int gen ^ "\n")

let pick_generation root =
  let on_disk =
    if Sys.file_exists root && Sys.is_directory root then
      Array.to_list (Sys.readdir root)
      |> List.filter_map (fun f ->
             if Filename.check_suffix f ".log" then gen_of_filename f else None)
      |> List.sort_uniq compare
    else []
  in
  let classify g = valid_header (log_file root g) g in
  let from_current =
    match read_file_opt (current_file root) with
    | None -> None
    | Some s -> int_of_string_opt (String.trim s)
  in
  match from_current with
  | Some g when List.mem g on_disk && classify g = `Ok -> `Use g
  | _ -> (
    (* CURRENT missing or stale (crash during init or swap): newest
       generation with an intact header wins. *)
    match List.filter (fun g -> classify g = `Ok) on_disk with
    | _ :: _ as ok -> `Use (List.fold_left max (List.hd ok) ok)
    | [] -> (
      (* A file shorter than its header is a crash during creation —
         nothing in it was ever acknowledged, so it is re-initializable.
         A full-size file with a wrong magic is damage, not a crash. *)
      match List.filter (fun g -> classify g = `Short) on_disk with
      | _ :: _ as short -> `Reinit (List.fold_left max (List.hd short) short)
      | [] -> if on_disk = [] then `Fresh else `Corrupt))

let remove_orphans root gen =
  if Sys.file_exists root && Sys.is_directory root then
    Array.iter
      (fun f ->
        let stale =
          match gen_of_filename f with
          | Some g -> g <> gen
          | None -> Filename.check_suffix f ".tmp"
        in
        if stale then
          try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
      (Sys.readdir root)

let recover t =
  let path = log_file t.root t.gen in
  let size = (Unix.stat path).Unix.st_size in
  (match valid_header path t.gen with
  | `Ok -> ()
  | `Short | `Bad when size < header_size ->
    (* Crash before the first header sync completed: nothing was ever
       acknowledged from this file — re-initialize it. *)
    init_generation t.root t.gen
  | `Short | `Bad -> failwith (Printf.sprintf "log: bad header in %s" path));
  let size = (Unix.stat path).Unix.st_size in
  let start =
    match load_checkpoint (idx_file t.root t.gen) ~gen:t.gen ~file_size:size with
    | Some (covered, entries) ->
      Hash.Tbl.iter (fun id e -> Hash.Tbl.replace t.index id e) entries;
      covered
    | None -> header_size
  in
  let stop, replayed =
    scan_records path ~start ~size (fun ~kind ~id ~off ~len ~payload:_ ->
        if kind = 0 then Hash.Tbl.replace t.index id { off; len }
        else Hash.Tbl.remove t.index id)
  in
  t.c.replayed_records <- t.c.replayed_records + replayed;
  if stop < size then begin
    (* Torn tail: physically drop it so the next append starts on a
       record boundary and a later scan sees only sealed records. *)
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd stop;
        if t.config.fsync then Unix.fsync fd);
    t.c.truncated_bytes <- t.c.truncated_bytes + (size - stop)
  end;
  t.file_len <- stop;
  t.synced_len <- stop;
  t.ckpt_len <- stop;
  t.live_payload <- Hash.Tbl.fold (fun _ e acc -> acc + e.len) t.index 0

(* ------------------------- compaction ------------------------- *)

let reopen_fds_locked t =
  (try Unix.close t.wfd with Unix.Unix_error _ -> ());
  (try Unix.close t.rfd with Unix.Unix_error _ -> ());
  let path = log_file t.root t.gen in
  t.wfd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.rfd <- Unix.openfile path [ Unix.O_RDONLY ] 0

let compact_locked ?(live = fun _ -> true) ?(on_stage = fun _ -> ()) t =
  ensure_open t;
  sync_locked t;
  let new_gen = t.gen + 1 in
  let new_log = log_file t.root new_gen in
  let tmp = new_log ^ ".tmp" in
  let new_index = Hash.Tbl.create (max 16 (Hash.Tbl.length t.index)) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let new_len = ref header_size in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         write_all fd (header_bytes new_gen);
         (* Rewrite in offset order: sequential reads of the old file. *)
         let entries =
           Hash.Tbl.fold (fun id e acc -> (id, e) :: acc) t.index []
           |> List.sort (fun (_, a) (_, b) -> compare a.off b.off)
         in
         List.iter
           (fun (id, e) ->
             if live id then
               match pread_locked t e.off e.len with
               | None -> () (* unreadable record: dropped, fsck's territory *)
               | Some payload ->
                 let b = encode_record ~kind:0 ~id ~payload in
                 write_all fd b;
                 Hash.Tbl.replace new_index id
                   { off = !new_len + rec_head_size; len = e.len };
                 new_len := !new_len + Bytes.length b)
           entries;
         if t.config.fsync then Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp new_log;
  if t.config.fsync then fsync_dir t.root;
  write_checkpoint_file ~fsync:t.config.fsync (idx_file t.root new_gen)
    ~gen:new_gen ~covered:!new_len new_index;
  on_stage After_data;
  on_stage Before_switch;
  (* The commit point: CURRENT flips atomically to the new generation. *)
  write_file_atomic ~fsync:true (current_file t.root)
    (string_of_int new_gen ^ "\n");
  on_stage After_switch;
  let old_gen = t.gen in
  t.gen <- new_gen;
  reopen_fds_locked t;
  (try Sys.remove (log_file t.root old_gen) with Sys_error _ -> ());
  (try Sys.remove (idx_file t.root old_gen) with Sys_error _ -> ());
  Hash.Tbl.reset t.index;
  Hash.Tbl.iter (fun id e -> Hash.Tbl.replace t.index id e) new_index;
  t.file_len <- !new_len;
  t.synced_len <- !new_len;
  t.ckpt_len <- !new_len;
  t.pending <- 0;
  t.live_payload <- Hash.Tbl.fold (fun _ e acc -> acc + e.len) t.index 0;
  t.c.compactions <- t.c.compactions + 1

(* ------------------------- background thread ------------------------- *)

let background_loop t =
  while not t.closed do
    Thread.delay t.config.tick_s;
    Mutex.lock t.lock;
    (try
       if not t.closed then begin
         if
           t.pending > 0
           && Unix.gettimeofday () -. t.pending_since >= t.config.group_window_s
         then sync_locked t;
         if t.config.auto_compact > 0.0 then begin
           let total = t.file_len - header_size in
           let garbage = garbage_locked t in
           if
             total > 0
             && garbage >= t.config.compact_min_bytes
             && float_of_int garbage > t.config.auto_compact *. float_of_int total
           then begin
             compact_locked t;
             t.c.auto_compactions <- t.c.auto_compactions + 1
           end
         end
       end
     with _ -> t.c.background_errors <- t.c.background_errors + 1);
    Mutex.unlock t.lock
  done

(* ------------------------- construction ------------------------- *)

let create ?(config = default_config) ~root () =
  mkdir_p root;
  let gen =
    match pick_generation root with
    | `Use g -> g
    | `Reinit g ->
      init_generation root g;
      g
    | `Fresh ->
      init_generation root 0;
      0
    | `Corrupt -> failwith ("log: no intact generation under " ^ root)
  in
  remove_orphans root gen;
  let path = log_file root gen in
  let t =
    { root;
      config;
      lock = Mutex.create ();
      gen;
      (* placeholders; recover/reopen set the real state below *)
      wfd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
      rfd = Unix.openfile path [ Unix.O_RDONLY ] 0;
      file_len = 0;
      synced_len = 0;
      ckpt_len = 0;
      pending = 0;
      pending_since = 0.0;
      index = Hash.Tbl.create 1024;
      live_payload = 0;
      closed = false;
      thread = None;
      c =
        { appends = 0; deletes = 0; flushes = 0; checkpoints = 0;
          compactions = 0; auto_compactions = 0; replayed_records = 0;
          truncated_bytes = 0; background_errors = 0 };
      puts = 0;
      gets = 0;
      dedup_hits = 0;
      logical_bytes = 0 }
  in
  recover t;
  register_gauges t;
  if config.compactor then t.thread <- Some (Thread.create background_loop t);
  t

let sync t = locked t (fun () -> ensure_open t; sync_locked t)

let checkpoint t =
  locked t (fun () ->
      ensure_open t;
      sync_locked t;
      checkpoint_locked t)

let compact ?live ?on_stage t = locked t (fun () -> compact_locked ?live ?on_stage t)

let close t =
  let first =
    locked t (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          let th = t.thread in
          t.thread <- None;
          Some th
        end)
  in
  match first with
  | None -> () (* second close: already torn down *)
  | Some th ->
    Option.iter Thread.join th;
    locked t (fun () ->
        (* closed is already set; flush and seal directly. *)
        (if t.synced_len < t.file_len || t.pending > 0 then begin
           if t.config.fsync then Unix.fsync t.wfd;
           t.synced_len <- t.file_len;
           t.pending <- 0;
           t.c.flushes <- t.c.flushes + 1
         end);
        checkpoint_locked t;
        (try Unix.close t.wfd with Unix.Unix_error _ -> ());
        (try Unix.close t.rfd with Unix.Unix_error _ -> ()))

(* ------------------------- introspection ------------------------- *)

let generation t = locked t (fun () -> t.gen)
let file_bytes t = locked t (fun () -> t.file_len)
let synced_bytes t = locked t (fun () -> t.synced_len)
let garbage_bytes t = locked t (fun () -> garbage_locked t)
let live_chunks t = locked t (fun () -> Hash.Tbl.length t.index)
let counters t = t.c
let log_path t = log_file t.root t.gen
let idx_path t = idx_file t.root t.gen

(* ------------------------- Store.t view ------------------------- *)

let store t =
  let put chunk =
    locked t (fun () ->
        ensure_open t;
        let id = Chunk.hash chunk in
        let size = Chunk.encoded_size chunk in
        t.puts <- t.puts + 1;
        t.logical_bytes <- t.logical_bytes + size;
        if Hash.Tbl.mem t.index id then begin
          t.dedup_hits <- t.dedup_hits + 1;
          id
        end
        else begin
          let payload = Chunk.encode chunk in
          let off = append_record_locked t ~kind:0 ~id ~payload in
          Hash.Tbl.replace t.index id { off; len = size };
          t.live_payload <- t.live_payload + size;
          t.c.appends <- t.c.appends + 1;
          id
        end)
  in
  let read ?(count = true) id =
    locked t (fun () ->
        ensure_open t;
        if count then t.gets <- t.gets + 1;
        match Hash.Tbl.find_opt t.index id with
        | None -> None
        | Some e -> pread_locked t e.off e.len)
  in
  let get_raw id = read id in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  let peek id = read ~count:false id in
  let mem id = locked t (fun () -> Hash.Tbl.mem t.index id) in
  let delete id =
    locked t (fun () ->
        ensure_open t;
        match Hash.Tbl.find_opt t.index id with
        | None -> false
        | Some e ->
          ignore (append_record_locked t ~kind:1 ~id ~payload:"");
          Hash.Tbl.remove t.index id;
          t.live_payload <- t.live_payload - e.len;
          t.c.deletes <- t.c.deletes + 1;
          true)
  in
  let iter f =
    (* Snapshot the ids, then re-look each one up: a compaction between
       the snapshot and the read invalidates offsets but not ids, and a
       concurrently deleted id is an absence (File_store's TOCTOU rule). *)
    let ids = locked t (fun () -> Hash.Tbl.fold (fun id _ acc -> id :: acc) t.index []) in
    List.iter
      (fun id -> match peek id with Some raw -> f id raw | None -> ())
      ids
  in
  let stats () =
    locked t (fun () ->
        { Store.physical_chunks = Hash.Tbl.length t.index;
          physical_bytes = t.live_payload;
          puts = t.puts;
          dedup_hits = t.dedup_hits;
          logical_bytes = t.logical_bytes;
          gets = t.gets })
  in
  { Store.name = "log:" ^ t.root; put; get; get_raw; peek; mem; stats; iter;
    delete }

let export_pack t ~path =
  let entries = ref [] in
  (store t).Store.iter (fun id raw -> entries := (id, raw) :: !entries);
  Pack.write_file ~path !entries

(* ------------------------- fsck ------------------------- *)

type fsck_report = {
  fsck_generation : int;
  fsck_records : int;
  fsck_live : int;
  fsck_bytes : int;
  fsck_torn_bytes : int;
  fsck_bad_hash : Hash.t list;
  fsck_idx_valid : bool;
  fsck_idx_consistent : bool;
  fsck_orphan_gens : int list;
}

let fsck_clean r =
  r.fsck_bad_hash = [] && r.fsck_torn_bytes = 0 && r.fsck_orphan_gens = []
  && r.fsck_idx_valid && r.fsck_idx_consistent

let pp_fsck ppf r =
  Format.fprintf ppf
    "gen %d: %d records (%d live, %d bytes), %d torn tail bytes, %d bad \
     hashes, idx %s/%s, %d orphan generations"
    r.fsck_generation r.fsck_records r.fsck_live r.fsck_bytes
    r.fsck_torn_bytes
    (List.length r.fsck_bad_hash)
    (if r.fsck_idx_valid then "valid" else "INVALID")
    (if r.fsck_idx_consistent then "consistent" else "INCONSISTENT")
    (List.length r.fsck_orphan_gens)

let same_index a b =
  Hash.Tbl.length a = Hash.Tbl.length b
  && Hash.Tbl.fold
       (fun id (e : entry) acc ->
         acc
         && match Hash.Tbl.find_opt b id with
            | Some e' -> e.off = e'.off && e.len = e'.len
            | None -> false)
       a true

let fsck ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "fsck: %s is not a log root" root)
  else
    match pick_generation root with
    | `Fresh | `Corrupt | `Reinit _ ->
      Error (Printf.sprintf "fsck: no intact generation under %s" root)
    | `Use gen -> (
      let path = log_file root gen in
      match
        let size = (Unix.stat path).Unix.st_size in
        let bad = ref [] in
        let full = Hash.Tbl.create 256 in
        let stop, records =
          scan_records path ~start:header_size ~size
            ~verify_hash:(fun id payload ->
              if not (Hash.equal (Hash.of_string payload) id) then
                bad := id :: !bad)
            (fun ~kind ~id ~off ~len ~payload:_ ->
              if kind = 0 then Hash.Tbl.replace full id { off; len }
              else Hash.Tbl.remove full id)
        in
        let idx_valid, idx_consistent =
          if not (Sys.file_exists (idx_file root gen)) then (true, true)
          else
            match load_checkpoint (idx_file root gen) ~gen ~file_size:stop with
            | None -> (false, false)
            | Some (covered, entries) ->
              let via_idx = Hash.Tbl.create (Hash.Tbl.length entries) in
              Hash.Tbl.iter (fun id e -> Hash.Tbl.replace via_idx id e) entries;
              ignore
                (scan_records path ~start:covered ~size:stop
                   (fun ~kind ~id ~off ~len ~payload:_ ->
                     if kind = 0 then Hash.Tbl.replace via_idx id { off; len }
                     else Hash.Tbl.remove via_idx id));
              (true, same_index full via_idx)
        in
        let orphans =
          Array.to_list (Sys.readdir root)
          |> List.filter_map gen_of_filename
          |> List.sort_uniq compare
          |> List.filter (fun g -> g <> gen)
        in
        { fsck_generation = gen;
          fsck_records = records;
          fsck_live = Hash.Tbl.length full;
          fsck_bytes = size;
          fsck_torn_bytes = size - stop;
          fsck_bad_hash = List.rev !bad;
          fsck_idx_valid = idx_valid;
          fsck_idx_consistent = idx_consistent;
          fsck_orphan_gens = orphans }
      with
      | r -> Ok r
      | exception Sys_error e -> Error ("fsck: " ^ e)
      | exception Unix.Unix_error (e, _, _) ->
        Error ("fsck: " ^ Unix.error_message e))
