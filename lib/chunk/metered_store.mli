(** Instrumented store wrapper: the measurement substrate of the storage
    stack.

    [wrap] times every [put]/[get]/[get_raw]/[mem]/[delete] into
    {!Fb_obs.Obs} latency histograms ([<prefix>.put_seconds], ...) and
    registers the store's own counters ({!Store.stats}) as gauges, so a
    single registry dump reports the whole storage picture.  [peek] and
    [iter] pass through unmetered — maintenance reads (scrub, gc
    marking, replica repair) must not distort the operational numbers.

    When {!Fb_obs.Obs.is_enabled} is false each operation pays one
    boolean test over the bare store. *)

val wrap : ?prefix:string -> Store.t -> Store.t
(** Meter a store under [prefix] (default ["fb_store"]).  Wrapping two
    stores under one prefix aggregates them into the same histograms;
    use distinct prefixes to separate. *)

val register_store_stats : ?prefix:string -> Store.t -> unit
(** Register gauges over {!Store.stats} (physical chunks/bytes, logical
    bytes, puts, gets, dedup hits, dedup ratio) without metering. *)

val register_cache : ?prefix:string -> Cache_store.cache_stats -> unit
(** Fold an LRU cache's hits/misses/evictions and hit ratio into the
    registry (default prefix ["fb_cache"]). *)

val register_resilient : ?prefix:string -> Resilient_store.stats -> unit
(** Fold the self-healing read stack's retry/repair counters into the
    registry (default prefix ["fb_resilient"]). *)
