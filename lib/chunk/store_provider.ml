type config = {
  root : string;
  fsync : bool option;
  log_config : Log_store.config option;
  params : (string * string) list;
}

let config ?fsync ?log_config ?(params = []) ~root () =
  { root; fsync; log_config; params }

type handle = ..

type handle += Log_handle of Log_store.t

type instance = {
  store : Store.t;
  kind : string;
  sync : unit -> unit;
  close : unit -> unit;
  handle : handle option;
}

type t = {
  name : string;
  doc : string;
  detect : string -> bool;
  open_ : config -> (instance, string) result;
}

(* Registration order is detection priority, so the list is kept in
   insertion order; replacing a name keeps its original position (a
   re-registered provider should not jump the detection queue). *)
let providers : t list ref = ref []
let registry_lock = Mutex.create ()

let register p =
  Mutex.protect registry_lock (fun () ->
      if List.exists (fun q -> String.equal q.name p.name) !providers then
        providers :=
          List.map
            (fun q -> if String.equal q.name p.name then p else q)
            !providers
      else providers := !providers @ [ p ])

let all () = Mutex.protect registry_lock (fun () -> !providers)

let find name =
  List.find_opt (fun p -> String.equal p.name name) (all ())

let names () = List.map (fun p -> p.name) (all ())

let default_name = "log"

let resolve ~backend ~root =
  match backend with
  | "auto" -> (
    match List.find_opt (fun p -> p.detect root) (all ()) with
    | Some p -> Ok p
    | None -> (
      match find default_name with
      | Some p -> Ok p
      | None -> Error "no default store provider registered"))
  | name -> (
    match find name with
    | Some p -> Ok p
    | None ->
      Error
        (Printf.sprintf "unknown backend %S (registered: %s)" name
           (String.concat ", " (names ()))))

let open_ ~backend config =
  match resolve ~backend ~root:config.root with
  | Error _ as e -> e
  | Ok p -> p.open_ config

(* ------------------------- built-in providers ------------------------- *)

let is_dir p = Sys.file_exists p && Sys.is_directory p
let log_dir root = Filename.concat root "log"
let chunks_dir root = Filename.concat root "chunks"

let nop = Fun.const ()

(* Ephemeral: a fresh in-memory store per open.  Useful for throwaway
   serve instances and benches; never auto-detected. *)
let mem_provider =
  { name = "mem";
    doc = "ephemeral in-memory store (nothing survives close)";
    detect = (fun _ -> false);
    open_ =
      (fun _ ->
        Ok
          { store = Mem_store.create ();
            kind = "mem"; sync = nop; close = nop; handle = None }) }

let file_provider =
  { name = "file";
    doc = "one content-addressed file per chunk under <root>/chunks";
    detect = (fun root -> is_dir (chunks_dir root));
    open_ =
      (fun c ->
        match File_store.create ?fsync:c.fsync ~root:(chunks_dir c.root) () with
        | store ->
          Ok { store; kind = "file"; sync = nop; close = nop; handle = None }
        | exception Sys_error e -> Error e
        | exception Failure e -> Error e) }

let log_provider =
  { name = "log";
    doc = "crash-consistent append-only pack log under <root>/log";
    detect = (fun root -> is_dir (log_dir root));
    open_ =
      (fun c ->
        let config =
          let base = Option.value c.log_config ~default:Log_store.default_config in
          match c.fsync with
          | None -> base
          | Some f -> { base with Log_store.fsync = f }
        in
        match Log_store.create ~config ~root:(log_dir c.root) () with
        | h ->
          Ok
            { store = Log_store.store h;
              kind = "log";
              sync = (fun () -> try Log_store.sync h with Failure _ -> ());
              close = (fun () -> try Log_store.close h with Failure _ -> ());
              handle = Some (Log_handle h) }
        | exception Sys_error e -> Error e
        | exception Failure e -> Error e) }

(* Detection priority: an existing log layout wins over an existing
   chunk directory, matching the historical [`Auto] resolution. *)
let () =
  register log_provider;
  register file_provider;
  register mem_provider
