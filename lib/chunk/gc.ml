module Hash = Fb_hash.Hash

type result = {
  live_chunks : int;
  swept_chunks : int;
  swept_bytes : int;
}

let reachable store ~children ~roots =
  let seen = ref Hash.Set.empty in
  let rec visit id =
    if not (Hash.Set.mem id !seen) then begin
      seen := Hash.Set.add id !seen;
      (* Marking is maintenance, not workload: read through [peek] so a
         sweep does not inflate the [gets] counter the benches report. *)
      match Store.peek store id with
      | None -> ()
      | Some raw -> (
        match Chunk.decode raw with
        | Error _ -> ()
        | Ok chunk -> List.iter visit (children chunk))
    end
  in
  List.iter visit roots;
  !seen

let sweep store ~children ~roots =
  let live = reachable store ~children ~roots in
  let dead = ref [] in
  store.Store.iter (fun id encoded ->
      if not (Hash.Set.mem id live) then
        dead := (id, String.length encoded) :: !dead);
  let swept_bytes = ref 0 and swept_chunks = ref 0 in
  List.iter
    (fun (id, size) ->
      if Store.delete store id then begin
        incr swept_chunks;
        swept_bytes := !swept_bytes + size
      end)
    !dead;
  { live_chunks = Hash.Set.cardinal live;
    swept_chunks = !swept_chunks;
    swept_bytes = !swept_bytes }
