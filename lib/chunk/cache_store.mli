(** LRU read-cache wrapper.

    Chunks are immutable, which makes caching trivially coherent: an entry
    can never be stale, only evicted.  Useful in front of the directory
    backend, where hot POS-Tree index nodes are re-read on every descent. *)

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

val lookups : cache_stats -> int
(** Total lookups observed: [hits + misses]. *)

val hit_ratio : cache_stats -> float
(** Fraction of lookups served from the cache, in [0, 1]; 0 before any
    lookup. *)

val wrap : capacity:int -> Store.t -> Store.t * cache_stats
(** Keep up to [capacity] encoded chunks in memory (LRU).  Deletes evict the
    entry; writes populate it.
    @raise Invalid_argument if [capacity < 1]. *)
