module Hash = Fb_hash.Hash

type handle = {
  tbl : string Hash.Tbl.t;
  mutable stats : Store.stats;
}

let create_with_handle ?(name = "mem") () =
  let h = { tbl = Hash.Tbl.create 4096; stats = Store.empty_stats } in
  let put chunk =
    (* Hash first (streamed, memoized on the chunk); encode only when the
       chunk is actually absent. *)
    let id = Chunk.hash chunk in
    let size = Chunk.encoded_size chunk in
    let s = h.stats in
    let present = Hash.Tbl.mem h.tbl id in
    if not present then Hash.Tbl.replace h.tbl id (Chunk.encode chunk);
    h.stats <-
      { s with
        puts = s.puts + 1;
        logical_bytes = s.logical_bytes + size;
        dedup_hits = (s.dedup_hits + if present then 1 else 0);
        physical_chunks = (s.physical_chunks + if present then 0 else 1);
        physical_bytes = (s.physical_bytes + if present then 0 else size);
      };
    id
  in
  let get_raw id =
    h.stats <- { h.stats with gets = h.stats.gets + 1 };
    Hash.Tbl.find_opt h.tbl id
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some encoded -> (
      match Chunk.decode encoded with Ok c -> Some c | Error _ -> None)
  in
  let peek id = Hash.Tbl.find_opt h.tbl id in
  let mem id = Hash.Tbl.mem h.tbl id in
  let iter f = Hash.Tbl.iter f h.tbl in
  let delete id =
    match Hash.Tbl.find_opt h.tbl id with
    | None -> false
    | Some encoded ->
      Hash.Tbl.remove h.tbl id;
      let s = h.stats in
      h.stats <-
        { s with
          physical_chunks = max 0 (s.physical_chunks - 1);
          physical_bytes = max 0 (s.physical_bytes - String.length encoded) };
      true
  in
  ( { Store.name; put; get; get_raw; peek; mem; stats = (fun () -> h.stats);
      iter; delete },
    h )

let create ?name () = fst (create_with_handle ?name ())

let tamper h id ~f =
  match Hash.Tbl.find_opt h.tbl id with
  | None -> false
  | Some encoded ->
    Hash.Tbl.replace h.tbl id (f encoded);
    true

let chunk_ids h = Hash.Tbl.fold (fun id _ acc -> id :: acc) h.tbl []
