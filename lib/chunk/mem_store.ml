module Hash = Fb_hash.Hash

(* The backing hashtable is shared by every connection thread of the
   network service; a writer inserting a chunk can trigger a resize while
   a concurrent reader probes, so every table access runs under a private
   mutex.  Sections are single probes — the lock is never held across
   hashing or encoding (both are memoized on the chunk before the store
   is touched). *)
type handle = {
  lock : Mutex.t;
  tbl : string Hash.Tbl.t;
  mutable stats : Store.stats;
}

let create_with_handle ?(name = "mem") () =
  let h =
    { lock = Mutex.create (); tbl = Hash.Tbl.create 4096;
      stats = Store.empty_stats }
  in
  let put chunk =
    (* Hash first (streamed, memoized on the chunk); encode only when the
       chunk is actually absent. *)
    let id = Chunk.hash chunk in
    let size = Chunk.encoded_size chunk in
    (* Probe before encoding so a dedup hit still skips the encode; the
       chunk is encoded outside the lock (memoized, possibly slow) and the
       presence check is repeated under it in case another writer won the
       race in between. *)
    let encoded =
      if Mutex.protect h.lock (fun () -> Hash.Tbl.mem h.tbl id) then None
      else Some (Chunk.encode chunk)
    in
    Mutex.protect h.lock (fun () ->
        let s = h.stats in
        let present =
          match encoded with
          | None -> true
          | Some enc ->
            Hash.Tbl.mem h.tbl id
            || (Hash.Tbl.replace h.tbl id enc; false)
        in
        h.stats <-
          { s with
            puts = s.puts + 1;
            logical_bytes = s.logical_bytes + size;
            dedup_hits = (s.dedup_hits + if present then 1 else 0);
            physical_chunks = (s.physical_chunks + if present then 0 else 1);
            physical_bytes = (s.physical_bytes + if present then 0 else size);
          });
    id
  in
  let get_raw id =
    Mutex.protect h.lock (fun () ->
        h.stats <- { h.stats with gets = h.stats.gets + 1 };
        Hash.Tbl.find_opt h.tbl id)
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some encoded -> (
      match Chunk.decode encoded with Ok c -> Some c | Error _ -> None)
  in
  let peek id = Mutex.protect h.lock (fun () -> Hash.Tbl.find_opt h.tbl id) in
  let mem id = Mutex.protect h.lock (fun () -> Hash.Tbl.mem h.tbl id) in
  let iter f =
    (* Snapshot the bindings first: [f] may be arbitrarily slow (scrub
       re-hashes every chunk) and must not run under the lock. *)
    let snapshot =
      Mutex.protect h.lock (fun () ->
          Hash.Tbl.fold (fun id enc acc -> (id, enc) :: acc) h.tbl [])
    in
    List.iter (fun (id, enc) -> f id enc) snapshot
  in
  let delete id =
    Mutex.protect h.lock (fun () ->
        match Hash.Tbl.find_opt h.tbl id with
        | None -> false
        | Some encoded ->
          Hash.Tbl.remove h.tbl id;
          let s = h.stats in
          h.stats <-
            { s with
              physical_chunks = max 0 (s.physical_chunks - 1);
              physical_bytes = max 0 (s.physical_bytes - String.length encoded)
            };
          true)
  in
  ( { Store.name; put; get; get_raw; peek; mem; stats = (fun () -> h.stats);
      iter; delete },
    h )

let create ?name () = fst (create_with_handle ?name ())

let tamper h id ~f =
  Mutex.protect h.lock (fun () ->
      match Hash.Tbl.find_opt h.tbl id with
      | None -> false
      | Some encoded ->
        Hash.Tbl.replace h.tbl id (f encoded);
        true)

let chunk_ids h =
  Mutex.protect h.lock (fun () ->
      Hash.Tbl.fold (fun id _ acc -> id :: acc) h.tbl [])
