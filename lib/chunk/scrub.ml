module Hash = Fb_hash.Hash

type report = {
  scanned : int;
  scanned_bytes : int;
  corrupt : Hash.t list;
  quarantined : int;
  repaired : int;
  unrepaired : Hash.t list;
  orphans : Hash.t list;
  missing : (Hash.t * Hash.t) list;
}

(* A run that found damage but repaired all of it leaves a clean store:
   judge by what is still outstanding, not by what was discovered. *)
let clean r = r.unrepaired = [] && r.missing = []

let pp_report ppf r =
  Format.fprintf ppf
    "scanned %d chunks (%d bytes): %d corrupt, %d quarantined, %d repaired, \
     %d unrepaired, %d orphans, %d missing"
    r.scanned r.scanned_bytes (List.length r.corrupt) r.quarantined r.repaired
    (List.length r.unrepaired) (List.length r.orphans)
    (List.length r.missing)

(* Log generations need more than the per-chunk hash check [run] applies
   through [Store.iter]: record seals, checkpoint/replay agreement and
   leftover generations are log-level facts.  Delegate to the log engine's
   offline verifier so one scrub entry point covers both backends. *)
let fsck_log ~root = Log_store.fsck ~root
let pp_fsck_log = Log_store.pp_fsck
let fsck_log_clean = Log_store.fsck_clean

let run ?children ?(roots = []) ?replica ?quarantine ?(dry_run = false)
    (store : Store.t) =
  Fb_obs.Obs.with_span "scrub.run"
    ~attrs:[ ("store", store.Store.name) ]
  @@ fun () ->
  (* Pass 1: physical sweep — every stored blob must hash to its name and
     decode as a chunk. *)
  let scanned = ref 0 and scanned_bytes = ref 0 in
  let corrupt = ref [] in
  let good = ref Hash.Set.empty in
  Fb_obs.Obs.with_span "scrub.physical_sweep" (fun () ->
      store.Store.iter (fun id raw ->
          incr scanned;
          scanned_bytes := !scanned_bytes + String.length raw;
          if
            Hash.equal (Hash.of_string raw) id
            && Result.is_ok (Chunk.decode raw)
          then good := Hash.Set.add id !good
          else corrupt := (id, raw) :: !corrupt));
  let corrupt = List.rev !corrupt in
  (* Pass 2: quarantine damaged blobs, then repair from the replica.  The
     delete must come first either way: content-addressed [put] skips
     names that already exist. *)
  let quarantined = ref 0 and repaired = ref 0 in
  let unrepaired = ref [] in
  let repair_from_replica id =
    match replica with
    | None -> false
    | Some (r : Store.t) -> (
      match r.Store.peek id with
      | Some raw when Hash.equal (Hash.of_string raw) id -> (
        match Chunk.decode raw with
        | Error _ -> false
        | Ok chunk ->
          ignore (Store.delete store id);
          ignore (store.Store.put chunk);
          incr repaired;
          true)
      | Some _ | None -> false)
  in
  if dry_run then unrepaired := List.map fst corrupt
  else
    List.iter
      (fun (id, raw) ->
        (match quarantine with Some keep -> keep id raw | None -> ());
        if Store.delete store id then incr quarantined;
        if repair_from_replica id then good := Hash.Set.add id !good
        else unrepaired := id :: !unrepaired)
      corrupt;
  (* Pass 3: logical sweep — walk the Merkle graph from the roots and
     report reachable chunks the store cannot serve (even after a
     last-chance replica repair), plus healthy chunks nothing reaches. *)
  let missing = ref [] in
  let reachable = ref Hash.Set.empty in
  (match children with
  | None -> ()
  | Some children ->
    let rec visit parent id =
      if not (Hash.Set.mem id !reachable) then begin
        reachable := Hash.Set.add id !reachable;
        let raw =
          match store.Store.peek id with
          | Some raw when Hash.equal (Hash.of_string raw) id -> Some raw
          | _ ->
            if (not dry_run) && repair_from_replica id then
              store.Store.peek id
            else None
        in
        match raw with
        | None -> missing := (parent, id) :: !missing
        | Some raw -> (
          match Chunk.decode raw with
          | Error _ -> missing := (parent, id) :: !missing
          | Ok chunk -> List.iter (visit id) (children chunk))
      end
    in
    Fb_obs.Obs.with_span "scrub.logical_sweep" (fun () ->
        List.iter (fun root -> visit root root) roots));
  let orphans =
    if roots = [] || children = None then []
    else Hash.Set.elements (Hash.Set.diff !good !reachable)
  in
  { scanned = !scanned;
    scanned_bytes = !scanned_bytes;
    corrupt = List.map fst corrupt;
    quarantined = !quarantined;
    repaired = !repaired;
    unrepaired = List.rev !unrepaired;
    orphans;
    missing = List.rev !missing }
