(** Store-provider registry — the one seam through which "a place chunks
    live" is named, detected, and opened.

    Historically every layer had its own notion of a backend:
    [Persistent] hard-coded a closed [`Auto|`File|`Log] variant, the
    network server took the same variant through its CLI, and anything
    new (a sharded set of local stores, a remote node, a whole cluster)
    had to be wired in by editing that match.  The registry inverts the
    dependency: a backend {e registers} itself under a name with three
    capabilities — detect (does a root on disk look like mine?), open
    (build a {!Store.t} plus its lifecycle hooks), and a one-line doc —
    and every consumer ([Persistent.open_ ?backend], [forkbase serve
    --backend], scrub, gc, benches) resolves names through {!find} /
    {!resolve} without knowing the provider set.

    Built-in providers ([mem], [file], [log]) register at module load;
    higher layers add their own ([cluster] registers from [Fb_net] — it
    needs the network stack, which this library must not depend on). *)

type config = {
  root : string;
      (** Filesystem root for durable providers; advisory for others
          (the cluster provider keeps its node list there). *)
  fsync : bool option;  (** Override the provider's durability default. *)
  log_config : Log_store.config option;
      (** Tuning for the log engine; other providers ignore it. *)
  params : (string * string) list;
      (** Free-form provider parameters, e.g. [("nodes",
          "127.0.0.1:7447,127.0.0.1:7448"); ("replicas", "2")]. *)
}

val config : ?fsync:bool -> ?log_config:Log_store.config ->
  ?params:(string * string) list -> root:string -> unit -> config

(** Provider-specific live state an opened instance may expose beyond
    the [Store.t] record (e.g. the log engine handle that compaction and
    fsck need).  Extensible so providers in higher libraries can add
    their own cases without this module knowing them. *)
type handle = ..

type handle += Log_handle of Log_store.t

type instance = {
  store : Store.t;  (** The raw (unverified, unmetered) chunk store. *)
  kind : string;    (** Name of the provider that opened it. *)
  sync : unit -> unit;
      (** Durability barrier: every previously acknowledged write is on
          stable storage when this returns.  [Persistent.save] calls it
          before publishing a branch table. *)
  close : unit -> unit;  (** Release descriptors/threads; idempotent. *)
  handle : handle option;
}

type t = {
  name : string;
  doc : string;
  detect : string -> bool;
      (** [detect root]: does an existing layout under [root] belong to
          this provider?  Drives [auto] resolution; must not create
          anything on disk. *)
  open_ : config -> (instance, string) result;
}

val register : t -> unit
(** Add (or replace — last registration of a name wins) a provider.
    Registration order is detection priority for {!resolve} [auto]. *)

val find : string -> t option

val names : unit -> string list
(** Registered provider names, detection-priority order. *)

val default_name : string
(** The provider fresh roots get under [auto] resolution: ["log"]. *)

val resolve : backend:string -> root:string -> (t, string) result
(** Map a [--backend] argument to a provider.  ["auto"] picks the first
    registered provider whose [detect] claims [root], else
    {!default_name}; any other name must be registered — unknown names
    return [Error] listing what is (the message [Persistent] surfaces as
    a typed [Invalid]). *)

val open_ : backend:string -> config -> (instance, string) result
(** [resolve] + provider [open_] in one step. *)
