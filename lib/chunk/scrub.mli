(** Offline integrity pass (fsck) over a chunk store.

    {!run} makes three passes:

    + {b physical}: every stored blob must hash to its name and decode as
      a chunk; failures are listed in [corrupt];
    + {b quarantine & repair} (skipped under [dry_run]): each corrupt
      blob is handed to the [quarantine] callback (e.g. to copy the bytes
      aside for forensics), deleted, and — when a [replica] holds a
      healthy copy — re-put from it ([repaired]); otherwise it lands in
      [unrepaired];
    + {b logical} (needs [children] and [roots]): walk the Merkle graph
      from [roots]; reachable chunks the store cannot serve even after a
      last-chance replica repair are reported in [missing] (paired with
      the parent that referenced them — a root pairs with itself), and
      healthy chunks nothing reaches are [orphans] (GC candidates, not
      damage).

    The walk uses {!Store.peek} throughout, so scrubbing does not inflate
    workload read counters.

    The chunk layer knows nothing about chunk schemas, so the child
    relation and the root set are parameters; [Fb_core.Forkbase.scrub]
    supplies them from the DAG layer. *)

type report = {
  scanned : int;  (** physical blobs visited *)
  scanned_bytes : int;
  corrupt : Fb_hash.Hash.t list;  (** failed hash check or decode *)
  quarantined : int;  (** corrupt blobs removed from the store *)
  repaired : int;  (** chunks restored from the replica *)
  unrepaired : Fb_hash.Hash.t list;  (** corrupt, and no healthy replica copy *)
  orphans : Fb_hash.Hash.t list;  (** healthy but unreachable from any root *)
  missing : (Fb_hash.Hash.t * Fb_hash.Hash.t) list;
      (** [(parent, child)]: reachable but unservable; roots pair with
          themselves *)
}

val clean : report -> bool
(** Nothing unrepaired and nothing missing — the store holds no
    outstanding damage after this run ([corrupt] may be non-empty when
    everything found was repaired; orphans are garbage, not damage). *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?children:(Chunk.t -> Fb_hash.Hash.t list) ->
  ?roots:Fb_hash.Hash.t list ->
  ?replica:Store.t ->
  ?quarantine:(Fb_hash.Hash.t -> string -> unit) ->
  ?dry_run:bool ->
  Store.t ->
  report
(** [dry_run] (default [false]) reports without deleting or repairing;
    under [dry_run] every corrupt chunk is also listed [unrepaired].
    Without [children]/[roots] only the physical passes run ([orphans]
    and [missing] stay empty). *)

(** {1 Log-backend generations}

    A {!Log_store} root has integrity structure {!run} cannot see through
    the [Store.t] surface: record CRC seals, the checkpoint-vs-replay
    agreement, torn tails and leftover generations from a crashed
    compaction.  These delegate to the log engine's offline verifier. *)

val fsck_log : root:string -> (Log_store.fsck_report, string) result
(** Read-only fsck of a log root (see {!Log_store.fsck}). *)

val fsck_log_clean : Log_store.fsck_report -> bool
val pp_fsck_log : Format.formatter -> Log_store.fsck_report -> unit
