module Hash = Fb_hash.Hash
module Obs = Fb_obs.Obs

type member_state = {
  m_name : string;
  m_store : Store.t;
  mutable m_up : bool;
  mutable m_puts : int;
  mutable m_failovers : int;
  mutable m_repairs : int;
}

type cluster_stats = {
  failover_reads : int;
  repaired : int;
  rejected : int;
  under_replicated : int;
  unavailable : int;
}

type t = {
  name : string;
  replicas : int;
  virtual_nodes : int;
  max_retries : int;
  backoff_s : float;
  prng : Fb_hash.Prng.t;
  lock : Mutex.t;
  mutable members : member_state array;
  mutable ring : (string * int) array;
  mutable failover_reads : int;
  mutable repaired : int;
  mutable rejected : int;
  mutable under_replicated : int;
  mutable unavailable : int;
  mutable agg : Store.stats;
}

(* ----------------------------- placement ------------------------------ *)

let ring_of ~virtual_nodes names =
  let points = ref [] in
  List.iteri
    (fun idx name ->
      for v = 0 to virtual_nodes - 1 do
        let point =
          Hash.to_hex (Hash.of_string (Printf.sprintf "%s#%d" name v))
        in
        points := (point, idx) :: !points
      done)
    names;
  let arr = Array.of_list !points in
  Array.sort compare arr;
  arr

let owner_ranks ~ring ~replicas id =
  let n = Array.length ring in
  if n = 0 then []
  else begin
    let key = Hash.to_hex id in
    (* Binary search: first ring point >= key (wrapping). *)
    let start =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if fst ring.(mid) < key then lo := mid + 1 else hi := mid
      done;
      !lo mod n
    in
    let distinct =
      let seen = Hashtbl.create 8 in
      Array.iter (fun (_, idx) -> Hashtbl.replace seen idx ()) ring;
      Hashtbl.length seen
    in
    let want = min replicas distinct in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref start in
    while Hashtbl.length seen < want do
      let idx = snd ring.(!i mod n) in
      if not (Hashtbl.mem seen idx) then begin
        Hashtbl.replace seen idx ();
        out := idx :: !out
      end;
      incr i
    done;
    List.rev !out
  end

(* ----------------------------- lifecycle ------------------------------ *)

let rebuild_ring t =
  t.ring <-
    ring_of ~virtual_nodes:t.virtual_nodes
      (Array.to_list (Array.map (fun m -> m.m_name) t.members))

let register_gauges t =
  Array.iteri
    (fun i m ->
      let g field f =
        Obs.gauge
          (Printf.sprintf "cluster.%s.node.%d.%s" t.name i field)
          f
      in
      g "up" (fun () -> if m.m_up then 1. else 0.);
      g "puts" (fun () -> float_of_int m.m_puts);
      g "failovers" (fun () -> float_of_int m.m_failovers);
      g "repairs" (fun () -> float_of_int m.m_repairs))
    t.members

let refresh_gauges t =
  Obs.unregister_gauges_prefix (Printf.sprintf "cluster.%s.node." t.name);
  register_gauges t

let create ?(name = "cluster") ?(replicas = 2) ?(virtual_nodes = 64)
    ?(max_retries = 2) ?(backoff_s = 0.) ~members () =
  if members = [] then invalid_arg "Cluster_store.create: no members";
  if replicas < 1 then
    invalid_arg "Cluster_store.create: replicas must be >= 1";
  if virtual_nodes < 1 then
    invalid_arg "Cluster_store.create: virtual_nodes must be >= 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg ("Cluster_store.create: duplicate member " ^ n);
      Hashtbl.replace seen n ())
    members;
  let members =
    Array.of_list
      (List.map
         (fun (m_name, m_store) ->
           { m_name; m_store; m_up = true;
             m_puts = 0; m_failovers = 0; m_repairs = 0 })
         members)
  in
  let t =
    { name;
      replicas = min replicas (Array.length members);
      virtual_nodes;
      max_retries;
      backoff_s;
      prng = Fb_hash.Prng.create (Int64.of_int (Hashtbl.hash name));
      lock = Mutex.create ();
      members;
      ring = [||];
      failover_reads = 0;
      repaired = 0;
      rejected = 0;
      under_replicated = 0;
      unavailable = 0;
      agg = Store.empty_stats }
  in
  rebuild_ring t;
  register_gauges t;
  t

let members t =
  Mutex.protect t.lock (fun () ->
      Array.to_list (Array.map (fun m -> m.m_name) t.members))

let replicas t = t.replicas

let find_member t name =
  Array.find_opt (fun m -> String.equal m.m_name name) t.members

let set_down t name flag =
  Mutex.protect t.lock (fun () ->
      match find_member t name with
      | Some m -> m.m_up <- not flag
      | None -> invalid_arg ("Cluster_store.set_down: unknown member " ^ name))

let add_member t (name, store) =
  Mutex.protect t.lock (fun () ->
      if find_member t name <> None then
        invalid_arg ("Cluster_store.add_member: duplicate member " ^ name);
      t.members <-
        Array.append t.members
          [| { m_name = name; m_store = store; m_up = true;
               m_puts = 0; m_failovers = 0; m_repairs = 0 } |];
      rebuild_ring t;
      refresh_gauges t)

let remove_member t name =
  Mutex.protect t.lock (fun () ->
      if find_member t name = None then
        invalid_arg ("Cluster_store.remove_member: unknown member " ^ name);
      t.members <-
        Array.of_list
          (List.filter
             (fun m -> not (String.equal m.m_name name))
             (Array.to_list t.members));
      if Array.length t.members = 0 then
        invalid_arg "Cluster_store.remove_member: cannot remove last member";
      rebuild_ring t;
      refresh_gauges t)

(* A consistent snapshot of (members, ring) for one operation: membership
   changes mid-op see either the old or the new ring, never a mix. *)
let snapshot t =
  Mutex.protect t.lock (fun () -> (t.members, t.ring))

let owner_states t id =
  let members, ring = snapshot t in
  List.map
    (fun i -> members.(i))
    (owner_ranks ~ring ~replicas:t.replicas id)

let owners t id = List.map (fun m -> m.m_name) (owner_states t id)

(* -------------------------- fault discipline -------------------------- *)

(* Run [f] against one member, absorbing [Store.Transient] with bounded
   jittered exponential backoff (Resilient_store's schedule).  Exhausted
   retries return the last Transient as an [Error]; permanent exceptions
   propagate to the caller. *)
let with_retries t f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Store.Transient msg ->
      if attempt >= t.max_retries then Error msg
      else begin
        if t.backoff_s > 0. then
          Thread.delay
            (Resilient_store.backoff_duration ~backoff_s:t.backoff_s
               ~jitter:(Fb_hash.Prng.next_float t.prng)
               attempt);
        go (attempt + 1)
      end
  in
  go 0

(* ------------------------------- store -------------------------------- *)

let bump_agg t ~f = Mutex.protect t.lock (fun () -> t.agg <- f t.agg)

let put_impl t chunk =
  let id = Chunk.hash chunk in
  let size = Chunk.encoded_size chunk in
  let owner_list = owner_states t id in
  let acked, fresh =
    List.fold_left
      (fun (acked, fresh) m ->
        if not m.m_up then (acked, fresh)
        else
          match
            with_retries t (fun () ->
                let was = Store.mem m.m_store id in
                ignore (Store.put m.m_store chunk);
                was)
          with
          | Ok was ->
            m.m_puts <- m.m_puts + 1;
            (acked + 1, fresh || not was)
          | Error _ -> (acked, fresh))
      (0, false) owner_list
  in
  if acked = 0 then begin
    Mutex.protect t.lock (fun () -> t.unavailable <- t.unavailable + 1);
    raise
      (Store.Transient
         (Printf.sprintf "cluster %s: no owner of %s reachable" t.name
            (Hash.to_hex id)))
  end;
  if acked < List.length owner_list then
    Mutex.protect t.lock (fun () ->
        t.under_replicated <- t.under_replicated + 1);
  bump_agg t ~f:(fun s ->
      { s with
        Store.puts = s.Store.puts + 1;
        logical_bytes = s.Store.logical_bytes + size;
        dedup_hits = (s.Store.dedup_hits + if fresh then 0 else 1);
        physical_chunks = (s.Store.physical_chunks + if fresh then 1 else 0);
        physical_bytes = (s.Store.physical_bytes + if fresh then size else 0)
      });
  id

(* Walk owners in preference order.  [repair] controls whether a late
   success re-puts the bytes into earlier failures (get path yes, peek
   path no); [count] controls the gets counter. *)
let read_impl t ~repair ~count id =
  if count then bump_agg t ~f:(fun s -> { s with Store.gets = s.Store.gets + 1 });
  let owner_list = owner_states t id in
  let rec try_owners tried = function
    | [] ->
      if tried <> [] && count then
        Mutex.protect t.lock (fun () -> t.unavailable <- t.unavailable + 1);
      None
    | m :: rest ->
      let skipped () = if count then m.m_failovers <- m.m_failovers + 1 in
      if not m.m_up then begin
        skipped ();
        try_owners (m :: tried) rest
      end
      else begin
        let reader () =
          if repair then m.m_store.Store.get_raw id
          else m.m_store.Store.peek id
        in
        match with_retries t reader with
        | Error _ ->
          skipped ();
          try_owners (m :: tried) rest
        | Ok None ->
          skipped ();
          try_owners (m :: tried) rest
        | Ok (Some raw) ->
          if Hash.equal (Hash.of_string raw) id then begin
            if tried <> [] && repair then begin
              Mutex.protect t.lock (fun () ->
                  t.failover_reads <- t.failover_reads + 1);
              (* Read repair: give every owner we skipped a good copy.
                 Members that refuse (still down, still failing) keep
                 their failover tally; the next read retries them. *)
              match Chunk.decode raw with
              | Ok chunk ->
                List.iter
                  (fun peer ->
                    if peer.m_up then
                      match
                        with_retries t (fun () ->
                            ignore (Store.put peer.m_store chunk))
                      with
                      | Ok () ->
                        peer.m_repairs <- peer.m_repairs + 1;
                        Mutex.protect t.lock (fun () ->
                            t.repaired <- t.repaired + 1)
                      | Error _ -> ())
                  tried
              | Error _ -> ()
            end;
            Some raw
          end
          else begin
            (* Tamper-evidence at the routing tier: bytes that do not
               re-hash to the id never leave the cluster.  Drop the bad
               replica where the member allows it and look elsewhere. *)
            Mutex.protect t.lock (fun () -> t.rejected <- t.rejected + 1);
            skipped ();
            (try ignore (m.m_store.Store.delete id) with _ -> ());
            try_owners (m :: tried) rest
          end
      end
  in
  try_owners [] owner_list

let iter_impl t f =
  let members, _ = snapshot t in
  let seen = Hash.Tbl.create 1024 in
  Array.iter
    (fun m ->
      if m.m_up then
        (* Remote members have no wire enumeration and raise [Failure]
           from [iter]; a union over what the reachable, enumerable
           members hold is the best a composite can offer. *)
        match
          with_retries t (fun () ->
              try
                m.m_store.Store.iter (fun id encoded ->
                    if not (Hash.Tbl.mem seen id) then begin
                      Hash.Tbl.replace seen id ();
                      f id encoded
                    end)
              with Failure _ -> ())
        with
        | Ok () -> ()
        | Error _ -> ())
    members

let store t =
  let put chunk = put_impl t chunk in
  let get_raw id = read_impl t ~repair:true ~count:true id in
  let get id =
    match get_raw id with
    | None -> None
    | Some raw -> (
      match Chunk.decode raw with Ok c -> Some c | Error _ -> None)
  in
  let peek id = read_impl t ~repair:false ~count:false id in
  let mem id =
    List.exists
      (fun m ->
        m.m_up
        &&
        match with_retries t (fun () -> Store.mem m.m_store id) with
        | Ok b -> b
        | Error _ -> false)
      (owner_states t id)
  in
  let delete id =
    (* GC must reach every replica, including stale copies on former
       owners — address all members, not just current owners. *)
    let members, _ = snapshot t in
    let deleted = ref false in
    Array.iter
      (fun m ->
        if m.m_up then
          (* Members without wire-level delete (remote nodes own their
             GC) raise [Failure]; skip them rather than fail the sweep. *)
          match
            with_retries t (fun () ->
                try m.m_store.Store.delete id with Failure _ -> false)
          with
          | Ok true -> deleted := true
          | Ok false | Error _ -> ())
      members;
    if !deleted then
      bump_agg t ~f:(fun s ->
          { s with
            Store.physical_chunks = max 0 (s.Store.physical_chunks - 1) });
    !deleted
  in
  { Store.name =
      Printf.sprintf "cluster:%s(%d/%d)" t.name t.replicas
        (Array.length t.members);
    put;
    get;
    get_raw;
    peek;
    mem;
    stats = (fun () -> Mutex.protect t.lock (fun () -> t.agg));
    iter = (fun f -> iter_impl t f);
    delete }

(* ------------------------------ rebalance ----------------------------- *)

type rebalance_report = {
  scanned : int;
  moved_chunks : int;
  moved_bytes : int;
  unplaceable : int;
}

let rebalance t =
  let scanned = ref 0 in
  let moved_chunks = ref 0 in
  let moved_bytes = ref 0 in
  let unplaceable = ref 0 in
  iter_impl t (fun id encoded ->
      incr scanned;
      match Chunk.decode encoded with
      | Error _ -> incr unplaceable
      | Ok chunk ->
        let placed = ref 0 in
        List.iter
          (fun m ->
            if m.m_up then
              match
                with_retries t (fun () ->
                    if Store.mem m.m_store id then true
                    else begin
                      ignore (Store.put m.m_store chunk);
                      false
                    end)
              with
              | Ok already ->
                incr placed;
                if not already then begin
                  m.m_puts <- m.m_puts + 1;
                  incr moved_chunks;
                  moved_bytes := !moved_bytes + String.length encoded
                end
              | Error _ -> ())
          (owner_states t id);
        if !placed = 0 then incr unplaceable);
  { scanned = !scanned;
    moved_chunks = !moved_chunks;
    moved_bytes = !moved_bytes;
    unplaceable = !unplaceable }

(* ---------------------------- introspection --------------------------- *)

type node_stats = {
  node : string;
  up : bool;
  puts : int;
  failovers : int;
  repairs : int;
  chunks : int;
  bytes : int;
}

let node_stats t =
  let members, _ = snapshot t in
  Array.to_list
    (Array.map
       (fun m ->
         let chunks, bytes =
           match with_retries t (fun () -> Store.stats m.m_store) with
           | Ok s -> (s.Store.physical_chunks, s.Store.physical_bytes)
           | Error _ -> (0, 0)
         in
         { node = m.m_name;
           up = m.m_up;
           puts = m.m_puts;
           failovers = m.m_failovers;
           repairs = m.m_repairs;
           chunks;
           bytes })
       members)

let cluster_stats t =
  Mutex.protect t.lock (fun () ->
      { failover_reads = t.failover_reads;
        repaired = t.repaired;
        rejected = t.rejected;
        under_replicated = t.under_replicated;
        unavailable = t.unavailable })

let close t =
  Obs.unregister_gauges_prefix (Printf.sprintf "cluster.%s.node." t.name)
