(** Crash-consistent append-only pack log — the durable chunk engine.

    One generation file [gen-<N>.log] holds every chunk as a CRC-sealed
    record appended in arrival order; a side index [gen-<N>.idx] is a
    periodic checkpoint of the in-memory (id -> offset, length) table; the
    [CURRENT] file names the active generation.  This is the irmin-pack /
    single-file-repository layout: appends are sequential, random reads
    are one positioned read, and directory metadata is touched only at
    checkpoint and compaction boundaries.

    {b Record framing.}  Each record is

    {v kind(1) | length(4, BE) | id(32) | payload(length) | crc32(4, BE) v}

    where [kind] is 0 for a chunk append (payload = encoded chunk) and 1
    for a delete tombstone (length 0), and the CRC covers everything
    before it.  A record is facts-on-disk only once it is complete and
    its CRC verifies; recovery treats the first incomplete or unsealed
    record as the end of the log and truncates the torn tail.

    {b Group commit.}  Appends go to the OS immediately (one [write]) but
    [fsync] is batched: the log syncs after [group_chunks] unsynced
    records, when the oldest unsynced record is older than
    [group_window_s], or on an explicit {!sync}.  A chunk is
    {e acknowledged} — guaranteed to survive a power cut — only once a
    sync covering it returns.  {!Fb_core.Persistent.save} syncs the log
    before publishing the branch table, so a saved table never references
    an unacknowledged chunk.

    {b Recovery.}  Opening a root replays: pick the generation named by
    [CURRENT] (falling back to the newest generation with a valid
    header), delete orphan generations left by a crashed compaction, load
    the checkpoint index if it verifies, replay the log tail past the
    checkpoint, and physically truncate a torn final record.

    {b Compaction.}  {!compact} rewrites live records (optionally
    filtered by a GC liveness predicate) into generation [N+1], writes
    its checkpoint, and atomically swaps [CURRENT]; a crash at any point
    leaves either the old or the new generation fully intact.

    A root must be driven by one process at a time (same contract as
    [File_store]); within a process every operation is thread-safe. *)

type t

type config = {
  fsync : bool;       (** sync at group-commit boundaries (off = OS-buffered) *)
  group_chunks : int; (** sync after this many unsynced records *)
  group_window_s : float;
      (** ... or when the oldest unsynced record is this old (seconds) *)
  checkpoint_bytes : int;
      (** write an index checkpoint every this many appended bytes *)
  compactor : bool;
      (** run the background thread (aged-group flush + auto compaction) *)
  tick_s : float;  (** background thread wake-up interval *)
  auto_compact : float;
      (** compact when garbage exceeds this fraction of the file; 0 = never *)
  compact_min_bytes : int;
      (** ... and at least this many garbage bytes accumulated *)
}

val default_config : config
(** fsync on, groups of 64 chunks / 10 ms, 1 MiB checkpoints, background
    thread off, auto-compaction at 50% garbage (>= 64 KiB). *)

type counters = {
  mutable appends : int;
  mutable deletes : int;
  mutable flushes : int;           (** group-commit syncs performed *)
  mutable checkpoints : int;
  mutable compactions : int;
  mutable auto_compactions : int;  (** subset triggered by the background thread *)
  mutable replayed_records : int;  (** records replayed past the checkpoint on open *)
  mutable truncated_bytes : int;   (** torn tail bytes discarded by recovery *)
  mutable background_errors : int;
}

val create : ?config:config -> root:string -> unit -> t
(** Open (creating or recovering) the log rooted at directory [root].
    Registers the instance's counters as [log.<root>.*] observability
    gauges.  @raise Failure on a corrupt generation header. *)

val store : t -> Store.t
(** The {!Store.t} view: [put] appends (content-addressed dedup against
    the index), [get]/[get_raw]/[peek] are positioned reads, [delete]
    appends a tombstone, [iter] walks the live index. *)

val sync : t -> unit
(** Force the group commit: every record appended so far is acknowledged
    when this returns.  Writes a checkpoint when one is due. *)

val checkpoint : t -> unit
(** {!sync}, then unconditionally write the index checkpoint. *)

val close : t -> unit
(** Stop the background thread, sync, checkpoint, release descriptors.
    Idempotent; using the {!store} view afterwards raises. *)

type compact_stage =
  | After_data      (** new generation data + index written, [CURRENT] still old *)
  | Before_switch   (** about to atomically swap [CURRENT] *)
  | After_switch    (** [CURRENT] names the new generation; old files not yet removed *)

val compact : ?live:(Fb_hash.Hash.t -> bool) ->
  ?on_stage:(compact_stage -> unit) -> t -> unit
(** Rewrite live records into a fresh generation and swap atomically.
    [live] additionally drops records a GC marked unreachable (without
    needing per-chunk tombstones).  [on_stage] is a test hook for crash
    injection at the labelled points; if it raises, the store instance is
    dead but the on-disk state recovers to a consistent generation on the
    next {!create}. *)

(** {1 Introspection} *)

val generation : t -> int

val file_bytes : t -> int
(** Bytes in the active generation file. *)

val synced_bytes : t -> int
(** Prefix guaranteed durable — the acknowledgment boundary. *)

val garbage_bytes : t -> int
(** Dead record bytes a compaction would reclaim. *)

val live_chunks : t -> int
val counters : t -> counters

val log_path : t -> string
(** Active generation file (for test harnesses). *)

val idx_path : t -> string
(** Its checkpoint file. *)

val export_pack : t -> path:string -> (int, string) result
(** Freeze the live chunks into an immutable {!Pack} archive. *)

(** {1 Offline verification (fsck)} *)

type fsck_report = {
  fsck_generation : int;
  fsck_records : int;         (** sealed records in the active generation *)
  fsck_live : int;            (** live chunks after replaying tombstones *)
  fsck_bytes : int;           (** active generation file size *)
  fsck_torn_bytes : int;      (** trailing bytes past the last sealed record *)
  fsck_bad_hash : Fb_hash.Hash.t list;
      (** sealed records whose payload does not hash to their id *)
  fsck_idx_valid : bool;      (** checkpoint absent counts as valid *)
  fsck_idx_consistent : bool;
      (** checkpoint + tail replay reaches the full-replay state *)
  fsck_orphan_gens : int list; (** stray generations a crashed compaction left *)
}

val fsck_clean : fsck_report -> bool
(** No damaged records, no torn tail, index consistent, no orphans. *)

val fsck : root:string -> (fsck_report, string) result
(** Offline check of a log root: replays every generation record,
    re-hashes payloads, validates the checkpoint against a full replay.
    Read-only — never repairs; recovery happens on {!create}. *)

val pp_fsck : Format.formatter -> fsck_report -> unit
