(** Write-preferring reader-writer locks, plus key-striped composition.

    The network server classifies every service verb as read-only or
    mutating ({!Fb_core.Service.classify}) and runs read-only verbs under
    the shared side, so immutable content-addressed reads — the common
    case for a branchable substrate — never serialize behind each other.

    Policy: {e write-preferring}.  A reader arriving while any writer is
    active {e or waiting} blocks, so a steady stream of readers cannot
    starve writers; when the writer backlog drains, the whole waiting
    reader cohort is released at once (bounded reader wait: the writers
    queued at its arrival).  Locks are not reentrant — a thread taking
    the same lock (or stripe) twice deadlocks.

    Every acquisition records an {!Fb_obs.Obs} ["rwlock.wait"] span
    (attrs [mode=read|write], [scope=stripe|global]) and feeds the
    [fb.rwlock.wait_seconds] histogram, so traced requests expose lock
    wait separately from store work.  Free when observability is
    disabled. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a
(** Run under the shared side: excludes writers, admits other readers. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run under the exclusive side. *)

val with_mode : t -> [ `Read | `Write ] -> (unit -> 'a) -> 'a

(** Striped composition: [n] independent reader-writer locks with a
    stable [key -> stripe] hash.  Key-scoped verbs lock only their
    stripe, so writers on different keys exclude their own readers but
    not each other's; instance-wide verbs take every stripe (in index
    order — deadlock-free against every other acquisition pattern in
    this module). *)
module Striped : sig
  type t

  val default_stripes : int
  (** 16. *)

  val create : ?stripes:int -> unit -> t

  val stripe_count : t -> int

  val stripe_index : t -> string -> int
  (** Stable FNV-1a stripe assignment (exposed for tests). *)

  val with_key : t -> mode:[ `Read | `Write ] -> string -> (unit -> 'a) -> 'a

  val with_global : t -> mode:[ `Read | `Write ] -> (unit -> 'a) -> 'a
end
