module Codec = Fb_codec.Codec
module Errors = Fb_core.Errors

type error =
  | Eof
  | Timeout
  | Too_large of int
  | Malformed of string

let error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "timed out"
  | Too_large n -> Printf.sprintf "frame too large (%d bytes)" n
  | Malformed msg -> "malformed frame: " ^ msg

let default_max_frame = 16 * 1024 * 1024

(* A frame length needs at most 5 varint bytes (2^35 > any sane
   max_frame); more means the peer is speaking something else. *)
let max_len_bytes = 5

(* ------------------------- pure codecs ------------------------- *)

let encode_frame payload = Codec.to_string Codec.bytes payload

let decode_frame ?(max_frame = default_max_frame) ?(pos = 0) buf =
  let n = String.length buf in
  let rec varint i shift acc count =
    if count >= max_len_bytes then Error (Malformed "length varint too long")
    else if i >= n then Ok `Need_more
    else
      let b = Char.code (String.unsafe_get buf i) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then varint (i + 1) (shift + 7) acc (count + 1)
      else if b = 0 && count > 0 then Error (Malformed "non-minimal length")
      else if acc > max_frame then Error (Too_large acc)
      else if n - (i + 1) < acc then Ok `Need_more
      else Ok (`Frame (String.sub buf (i + 1) acc, i + 1 + acc))
  in
  varint pos 0 0 0

(* Version 2: requests are tagged single/batch, responses carry a typed
   status ahead of the payload (v1 carried a bare bool + pre-rendered
   English).  v1 frames are rejected by version number — the shapes are
   deliberately not bridgeable, so old clients get a clean error instead
   of a misparse. *)
let protocol_version = 2

type request = Single of string list | Batch of string list list

type trace = { trace_id : string; parent_span : int }

let kind_single = 0
let kind_batch = 1

(* Trace context and the pipelining sequence id ride in the same v2
   envelope behind flag bits on the kind byte: a header-less v2 frame
   (kind byte 0 or 1) is still a valid v2 frame, so tracing-unaware and
   pipelining-unaware peers interoperate unchanged.  The trace header
   sits between [user] and the body; the sequence id follows it.

   The sequence id is what makes request pipelining safe: a client may
   keep many tagged requests in flight on one socket, the server answers
   each reply (and server-initiated watch events) tagged, and the client
   matches replies out of order.  Requests without a sequence id keep
   strict in-order request/response semantics. *)
let flag_trace = 0x80
let flag_seq = 0x40
let kind_mask = 0x3f

let write_envelope_headers w ~trace ~seq =
  (match trace with
   | Some t ->
     Codec.bytes w t.trace_id;
     Codec.zigzag w t.parent_span
   | None -> ());
  match seq with Some s -> Codec.varint w s | None -> ()

let flags_of ~trace ~seq =
  (match trace with Some _ -> flag_trace | None -> 0)
  lor (match seq with Some _ -> flag_seq | None -> 0)

let read_envelope_headers r kind_byte =
  let trace =
    if kind_byte land flag_trace <> 0 then begin
      let trace_id = Codec.read_bytes r in
      let parent_span = Codec.read_zigzag r in
      Some { trace_id; parent_span }
    end
    else None
  in
  let seq =
    if kind_byte land flag_seq <> 0 then Some (Codec.read_varint r) else None
  in
  (trace, seq)

let encode_request ~user ?trace ?seq req =
  Codec.to_string
    (fun w () ->
      Codec.u8 w protocol_version;
      let kind =
        (match req with Single _ -> kind_single | Batch _ -> kind_batch)
        lor flags_of ~trace ~seq
      in
      Codec.u8 w kind;
      Codec.bytes w user;
      write_envelope_headers w ~trace ~seq;
      match req with
      | Single tokens -> Codec.list w Codec.bytes tokens
      | Batch reqs ->
        Codec.list w (fun w tokens -> Codec.list w Codec.bytes tokens) reqs)
    ()

let decode_request payload =
  Codec.of_string
    (fun r ->
      let v = Codec.read_u8 r in
      if v <> protocol_version then
        raise
          (Codec.Decode_error
             (Printf.sprintf
                "unsupported protocol version %d (this server speaks %d)" v
                protocol_version));
      let kind_byte = Codec.read_u8 r in
      let kind = kind_byte land kind_mask in
      let user = Codec.read_bytes r in
      let trace, seq = read_envelope_headers r kind_byte in
      if kind = kind_single then
        (user, trace, seq, Single (Codec.read_list r Codec.read_bytes))
      else if kind = kind_batch then
        ( user,
          trace,
          seq,
          Batch (Codec.read_list r (fun r -> Codec.read_list r Codec.read_bytes))
        )
      else
        raise
          (Codec.Decode_error (Printf.sprintf "unknown request kind %d" kind)))
    payload

(* ------------------------- typed status ------------------------- *)

(* Stable wire codes for Errors.t — the status tag ahead of every
   response payload.  String rendering happens only at the CLI/stdio
   edge; remote callers pattern-match the typed value. *)

let status_ok = 0

let error_code = function
  | Errors.Key_not_found _ -> 1
  | Errors.Branch_not_found _ -> 2
  | Errors.Version_not_found _ -> 3
  | Errors.Permission_denied _ -> 4
  | Errors.Merge_conflict _ -> 5
  | Errors.Type_mismatch _ -> 6
  | Errors.Corrupt _ -> 7
  | Errors.Transient _ -> 8
  | Errors.Invalid _ -> 9

let write_error w (e : Errors.t) =
  Codec.u8 w (error_code e);
  match e with
  | Errors.Key_not_found k -> Codec.bytes w k
  | Errors.Branch_not_found { key; branch } ->
    Codec.bytes w key;
    Codec.bytes w branch
  | Errors.Version_not_found v -> Codec.bytes w v
  | Errors.Permission_denied { user; action } ->
    Codec.bytes w user;
    Codec.bytes w action
  | Errors.Merge_conflict { key; details } ->
    Codec.bytes w key;
    Codec.list w Codec.bytes details
  | Errors.Type_mismatch { expected; got } ->
    Codec.bytes w expected;
    Codec.bytes w got
  | Errors.Corrupt msg | Errors.Transient msg | Errors.Invalid msg ->
    Codec.bytes w msg

let read_error r code : Errors.t =
  match code with
  | 1 -> Errors.Key_not_found (Codec.read_bytes r)
  | 2 ->
    let key = Codec.read_bytes r in
    let branch = Codec.read_bytes r in
    Errors.Branch_not_found { key; branch }
  | 3 -> Errors.Version_not_found (Codec.read_bytes r)
  | 4 ->
    let user = Codec.read_bytes r in
    let action = Codec.read_bytes r in
    Errors.Permission_denied { user; action }
  | 5 ->
    let key = Codec.read_bytes r in
    let details = Codec.read_list r Codec.read_bytes in
    Errors.Merge_conflict { key; details }
  | 6 ->
    let expected = Codec.read_bytes r in
    let got = Codec.read_bytes r in
    Errors.Type_mismatch { expected; got }
  | 7 -> Errors.Corrupt (Codec.read_bytes r)
  | 8 -> Errors.Transient (Codec.read_bytes r)
  | 9 -> Errors.Invalid (Codec.read_bytes r)
  | c -> raise (Codec.Decode_error (Printf.sprintf "unknown error code %d" c))

type reply = (string, Errors.t) result

(* Server-initiated push: one branch-head movement delivered to one
   subscription (the SUBSCRIBE verb).  Heads travel in their rendered
   (Base32) form like every other uid on this protocol. *)
type event = {
  sub_id : int;
  ev_key : string;
  ev_branch : string;
  new_head : string;
  old_head : string option;
}

type response = One of reply | Many of reply list | Event of event

let kind_event = 2

let write_reply w (reply : reply) =
  match reply with
  | Ok payload ->
    Codec.u8 w status_ok;
    Codec.bytes w payload
  | Error e -> write_error w e

let read_reply r : reply =
  let code = Codec.read_u8 r in
  if code = status_ok then Ok (Codec.read_bytes r) else Error (read_error r code)

let encode_response ?trace ?seq resp =
  Codec.to_string
    (fun w () ->
      let kind =
        (match resp with
         | One _ -> kind_single
         | Many _ -> kind_batch
         | Event _ -> kind_event)
        lor flags_of ~trace ~seq
      in
      Codec.u8 w kind;
      write_envelope_headers w ~trace ~seq;
      match resp with
      | One reply -> write_reply w reply
      | Many replies -> Codec.list w write_reply replies
      | Event e ->
        Codec.varint w e.sub_id;
        Codec.bytes w e.ev_key;
        Codec.bytes w e.ev_branch;
        Codec.bytes w e.new_head;
        (match e.old_head with
         | None -> Codec.bool w false
         | Some h ->
           Codec.bool w true;
           Codec.bytes w h))
    ()

let decode_response payload =
  Codec.of_string
    (fun r ->
      let kind_byte = Codec.read_u8 r in
      let kind = kind_byte land kind_mask in
      let trace, seq = read_envelope_headers r kind_byte in
      let resp =
        if kind = kind_single then One (read_reply r)
        else if kind = kind_batch then Many (Codec.read_list r read_reply)
        else if kind = kind_event then begin
          let sub_id = Codec.read_varint r in
          let ev_key = Codec.read_bytes r in
          let ev_branch = Codec.read_bytes r in
          let new_head = Codec.read_bytes r in
          let old_head =
            if Codec.read_bool r then Some (Codec.read_bytes r) else None
          in
          Event { sub_id; ev_key; ev_branch; new_head; old_head }
        end
        else
          raise
            (Codec.Decode_error
               (Printf.sprintf "unknown response kind %d" kind))
      in
      (trace, seq, resp))
    payload

(* ------------------------- socket IO ------------------------- *)

(* All socket deadlines funnel through here: [timeout_s <= 0.] (or
   [None]) uniformly means "no deadline" for connect, read and write
   paths alike. *)
let deadline_of_timeout timeout_s =
  match timeout_s with
  | Some t when t > 0.0 -> Some (Unix.gettimeofday () +. t)
  | _ -> None

let rec wait_fd ~read fd deadline =
  match deadline with
  | None -> Ok ()
  | Some t ->
    let remaining = t -. Unix.gettimeofday () in
    if remaining <= 0.0 then Error Timeout
    else
      let rd = if read then [ fd ] else [] in
      let wr = if read then [] else [ fd ] in
      (match Unix.select rd wr [] remaining with
       | [], [], _ -> Error Timeout
       | _ -> Ok ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) ->
         wait_fd ~read fd deadline)

let wait_readable fd deadline = wait_fd ~read:true fd deadline
let wait_writable fd deadline = wait_fd ~read:false fd deadline

let read_byte fd deadline buf1 =
  let rec go () =
    match wait_readable fd deadline with
    | Error _ as e -> e
    | Ok () -> (
      match Unix.read fd buf1 0 1 with
      | 0 -> Error Eof
      | _ -> Ok (Char.code (Bytes.unsafe_get buf1 0))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let read_frame ?(max_frame = default_max_frame) ?timeout_s fd =
  let deadline = deadline_of_timeout timeout_s in
  let buf1 = Bytes.create 1 in
  let rec read_len shift acc count =
    if count >= max_len_bytes then Error (Malformed "length varint too long")
    else
      match read_byte fd deadline buf1 with
      | Error _ as e -> e
      | Ok b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then read_len (shift + 7) acc (count + 1)
        else if b = 0 && count > 0 then Error (Malformed "non-minimal length")
        else if acc > max_frame then Error (Too_large acc)
        else Ok acc
  in
  match read_len 0 0 0 with
  | Error _ as e -> e
  | Ok len ->
    let buf = Bytes.create len in
    let rec fill off =
      if off >= len then Ok (Bytes.unsafe_to_string buf)
      else
        match wait_readable fd deadline with
        | Error _ as e -> e
        | Ok () -> (
          match Unix.read fd buf off (len - off) with
          | 0 -> Error Eof
          | k -> fill (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off)
    in
    fill 0

let write_frame ?timeout_s fd payload =
  let deadline = deadline_of_timeout timeout_s in
  let s = encode_frame payload in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then Ok ()
    else
      match wait_writable fd deadline with
      | Error _ as e -> e
      | Ok () -> (
        match Unix.write fd b off (len - off) with
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
  in
  go 0

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match (Unix.gethostbyname host).Unix.h_addr_list with
    | [||] -> Error (Printf.sprintf "host %s has no address" host)
    | addrs -> Ok addrs.(0)
    | exception Not_found -> Error (Printf.sprintf "unknown host %s" host))
