module Codec = Fb_codec.Codec

type error =
  | Eof
  | Timeout
  | Too_large of int
  | Malformed of string

let error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "timed out"
  | Too_large n -> Printf.sprintf "frame too large (%d bytes)" n
  | Malformed msg -> "malformed frame: " ^ msg

let default_max_frame = 16 * 1024 * 1024

(* A frame length needs at most 5 varint bytes (2^35 > any sane
   max_frame); more means the peer is speaking something else. *)
let max_len_bytes = 5

(* ------------------------- pure codecs ------------------------- *)

let encode_frame payload = Codec.to_string Codec.bytes payload

let decode_frame ?(max_frame = default_max_frame) ?(pos = 0) buf =
  let n = String.length buf in
  let rec varint i shift acc count =
    if count >= max_len_bytes then Error (Malformed "length varint too long")
    else if i >= n then Ok `Need_more
    else
      let b = Char.code (String.unsafe_get buf i) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then varint (i + 1) (shift + 7) acc (count + 1)
      else if b = 0 && count > 0 then Error (Malformed "non-minimal length")
      else if acc > max_frame then Error (Too_large acc)
      else if n - (i + 1) < acc then Ok `Need_more
      else Ok (`Frame (String.sub buf (i + 1) acc, i + 1 + acc))
  in
  varint pos 0 0 0

let protocol_version = 1

let encode_request ~user tokens =
  Codec.to_string
    (fun w () ->
      Codec.u8 w protocol_version;
      Codec.bytes w user;
      Codec.list w Codec.bytes tokens)
    ()

let decode_request payload =
  Codec.of_string
    (fun r ->
      let v = Codec.read_u8 r in
      if v <> protocol_version then
        raise
          (Codec.Decode_error
             (Printf.sprintf "unsupported protocol version %d" v));
      let user = Codec.read_bytes r in
      let tokens = Codec.read_list r Codec.read_bytes in
      (user, tokens))
    payload

let encode_response ~ok payload =
  Codec.to_string
    (fun w () ->
      Codec.bool w ok;
      Codec.bytes w payload)
    ()

let decode_response payload =
  Codec.of_string
    (fun r ->
      let ok = Codec.read_bool r in
      let body = Codec.read_bytes r in
      (ok, body))
    payload

(* ------------------------- socket IO ------------------------- *)

let wait_readable fd deadline =
  match deadline with
  | None -> Ok ()
  | Some t ->
    let rec go () =
      let remaining = t -. Unix.gettimeofday () in
      if remaining <= 0.0 then Error Timeout
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> Error Timeout
        | _ -> Ok ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let read_byte fd deadline buf1 =
  let rec go () =
    match wait_readable fd deadline with
    | Error _ as e -> e
    | Ok () -> (
      match Unix.read fd buf1 0 1 with
      | 0 -> Error Eof
      | _ -> Ok (Char.code (Bytes.unsafe_get buf1 0))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let read_frame ?(max_frame = default_max_frame) ?timeout_s fd =
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s
  in
  let buf1 = Bytes.create 1 in
  let rec read_len shift acc count =
    if count >= max_len_bytes then Error (Malformed "length varint too long")
    else
      match read_byte fd deadline buf1 with
      | Error _ as e -> e
      | Ok b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then read_len (shift + 7) acc (count + 1)
        else if b = 0 && count > 0 then Error (Malformed "non-minimal length")
        else if acc > max_frame then Error (Too_large acc)
        else Ok acc
  in
  match read_len 0 0 0 with
  | Error _ as e -> e
  | Ok len ->
    let buf = Bytes.create len in
    let rec fill off =
      if off >= len then Ok (Bytes.unsafe_to_string buf)
      else
        match wait_readable fd deadline with
        | Error _ as e -> e
        | Ok () -> (
          match Unix.read fd buf off (len - off) with
          | 0 -> Error Eof
          | k -> fill (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off)
    in
    fill 0

let write_frame fd payload =
  let s = encode_frame payload in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match (Unix.gethostbyname host).Unix.h_addr_list with
    | [||] -> Error (Printf.sprintf "host %s has no address" host)
    | addrs -> Ok addrs.(0)
    | exception Not_found -> Error (Printf.sprintf "unknown host %s" host))
