module Service = Fb_core.Service
module Errors = Fb_core.Errors
module Forkbase = Fb_core.Forkbase
module Obs = Fb_obs.Obs

type mode = [ `Event | `Threaded ]

type config = {
  host : string;
  port : int;
  backlog : int;
  max_frame : int;
  read_timeout_s : float;
  save_every_s : float;
  default_user : string;
  concurrency : [ `Striped | `Coarse ];
  stripes : int;
  metrics_port : int option;
  slow_ms : float;
  mode : mode;
  workers : int;
  max_conns : int;
  max_outbox : int;
  write_stall_s : float;
  max_pipeline : int;
}

(* FB_SLOW_MS seeds the default slow-request threshold so an operator
   can turn the slow log on without touching the launch command;
   [infinity] disables it. *)
let default_slow_ms =
  match Sys.getenv_opt "FB_SLOW_MS" with
  | Some s -> (
    match float_of_string_opt s with Some v when v >= 0.0 -> v | _ -> infinity)
  | None -> infinity

let default_config =
  { host = "127.0.0.1";
    port = 7447;
    backlog = 64;
    max_frame = Frame.default_max_frame;
    read_timeout_s = 30.0;
    save_every_s = 5.0;
    default_user = "anonymous";
    concurrency = `Striped;
    stripes = Rwlock.Striped.default_stripes;
    metrics_port = None;
    slow_ms = default_slow_ms;
    mode = `Event;
    workers = 4;
    max_conns = 10_000;
    max_outbox = 4 * 1024 * 1024;
    write_stall_s = 30.0;
    max_pipeline = 128 }

(* One entry of the slow-request ring behind /tracez: enough to render
   "what was slow, when, for whom" with the span tree captured at the
   moment the request finished (the ring would have evicted it later). *)
type slow_trace = {
  st_time : float;
  st_verb : string;
  st_user : string;
  st_ms : float;
  st_trace_id : string;
  st_tree : string;
}

let max_slow_traces = 32

(* ------------------------- event-loop plumbing ------------------------- *)

(* What travels loop -> worker: one decoded request bound to its
   connection, plus everything needed to frame the reply. *)
type job = {
  j_cid : int;
  j_seq : int option;
  j_serial : bool;  (* un-sequenced: blocks later frames until answered *)
  j_user : string;
  j_trace : Frame.trace option;
  j_req : Frame.request;
}

(* What travels worker -> loop: the finished wire bytes for one reply. *)
type completion = { c_cid : int; c_serial : bool; c_wire : string }

(* Per-connection state owned exclusively by the loop thread.  Reads are
   incremental ([inbuf] holds the undecoded tail between polls); writes
   go through a bounded outbox drained on POLLOUT. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  mutable inbuf : string;
  parked : (Frame.trace option * int option * string * Frame.request) Queue.t;
  outq : string Queue.t;
  mutable out_off : int;        (* bytes of the outq head already written *)
  mutable out_bytes : int;
  mutable inflight : int;
  mutable serial_busy : bool;
  mutable last_read : float;
  mutable last_write_progress : float;
  mutable conn_subs : int list; (* subscription ids owned by this conn *)
  mutable close_after_flush : bool;
  mutable interest : int;       (* mask currently registered with Ev *)
}

type event_state = {
  ev : Ev.t;
  conns : (int, conn) Hashtbl.t;
  by_fd : (int, conn) Hashtbl.t;  (* raw fd -> conn, for Ev dispatch *)
  subs : (int, int * string option * string option) Hashtbl.t;
  (* sub_id -> (cid, key filter, branch filter) *)
  mutable next_sub : int;
  mutable last_sweep : float;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  jobs : job Queue.t;
  jobs_mu : Mutex.t;
  jobs_cond : Condition.t;
  done_mu : Mutex.t;
  done_q : completion Queue.t;
  pushes : (Forkbase.head_event * Frame.trace option) Queue.t;
  (* guarded by done_mu, like done_q *)
  open_conns : int Atomic.t;
  outbox_hwm : int Atomic.t;
  mutable loop_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable watch : Forkbase.watch option;
}

type t = {
  cfg : config;
  fb : Forkbase.t;
  save : (unit -> unit) option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  started_at : float;
  (* Striped reader-writer locking: read-only verbs share their key's
     stripe, mutating verbs take it exclusively, instance-wide verbs
     span all stripes. *)
  locks : Rwlock.Striped.t;
  state : Mutex.t;    (* guards the mutable fields below *)
  mutable running : bool;
  mutable conns_threaded : (int * Unix.file_descr) list;
  mutable next_id : int;
  mutable accept_thread : Thread.t option;
  mutable saver_thread : Thread.t option;
  mutable metrics_http : Http.t option;
  mutable slow_traces : slow_trace list;  (* newest first, bounded *)
  ev : event_state option;  (* Some iff cfg.mode = `Event *)
}

(* ------------------------- metrics ------------------------- *)

let conns_total = Obs.counter "fb.net.connections"
let frames_total = Obs.counter "fb.net.frames"
let proto_errors = Obs.counter "fb.net.errors"
let request_errors = Obs.counter "fb.net.request_errors"
let save_errors = Obs.counter "fb.net.save_errors"
let batches_total = Obs.counter "fb.net.batches"
let batch_subrequests_total = Obs.counter "fb.net.batch_subrequests"
let read_verbs_total = Obs.counter "fb.net.read_verbs"
let write_verbs_total = Obs.counter "fb.net.write_verbs"
let subscribes_total = Obs.counter "fb.net.subscribes"
let events_pushed_total = Obs.counter "fb.net.events_pushed"
let stall_disconnects_total = Obs.counter "fb.net.stall_disconnects"
let conns_shed_total = Obs.counter "fb.net.conns_shed"

(* Histograms are created per verb name, so the set must be closed — a
   peer sending garbage verbs must not grow the registry unboundedly. *)
let verb_hists =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun v ->
      let metric = String.map (fun c -> if c = '-' then '_' else c) v in
      Hashtbl.replace tbl v
        (Obs.histogram (Printf.sprintf "fb.net.%s_seconds" metric)))
    [ "put"; "put-csv"; "get"; "get-at"; "head"; "latest"; "list"; "log";
      "branch"; "rename"; "meta"; "diff"; "merge"; "verify"; "stat";
      "metrics"; "metrics-json"; "fsck"; "scrub"; "get-json"; "diff-json";
      "log-json"; "stat-json"; "latest-json"; "prove"; "batch" ];
  tbl

let other_hist = Obs.histogram "fb.net.other_seconds"

let verb_hist verb =
  match Hashtbl.find_opt verb_hists verb with
  | Some h -> h
  | None -> other_hist

(* ------------------------- helpers ------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let is_running t = Mutex.protect t.state (fun () -> t.running)

let do_save t =
  match t.save with
  | None -> ()
  | Some save ->
    (* The save serializes the branch/tag tables: exclusive across the
       whole instance so it captures a consistent snapshot. *)
    Rwlock.Striped.with_global t.locks ~mode:`Write (fun () ->
        try save () with _ -> Obs.incr save_errors)

(* ------------------------- locking ------------------------- *)

let lock_mode = function Service.Read -> `Read | Service.Write -> `Write

(* One lock acquisition for the whole request, shaped by the verb
   classification.  [`Coarse] degrades every request to a global
   exclusive section — kept selectable so the scaling benchmark (and a
   worried operator) can A/B the two. *)
let locked t ~access ~scope f =
  match t.cfg.concurrency with
  | `Coarse -> Rwlock.Striped.with_global t.locks ~mode:`Write f
  | `Striped -> (
    let mode = lock_mode access in
    match scope with
    | Service.Key key -> Rwlock.Striped.with_key t.locks ~mode key f
    | Service.Global -> Rwlock.Striped.with_global t.locks ~mode f)

(* A batch runs under a single acquisition covering every sub-request:
   exclusive if any sub-request mutates, one stripe when all sub-requests
   name the same key, global otherwise. *)
let classify_batch reqs =
  List.fold_left
    (fun (access, scope) tokens ->
      let a, s = Service.classify tokens in
      let access = if a = Service.Write then Service.Write else access in
      let scope =
        match scope, s with
        | None, s -> Some s
        | Some (Service.Key k), Service.Key k' when String.equal k k' ->
          Some (Service.Key k)
        | Some _, _ -> Some Service.Global
      in
      (access, scope))
    (Service.Read, None) reqs
  |> fun (access, scope) ->
  (access, Option.value scope ~default:Service.Global)

(* Dispatch under the computed lock; mutations run with watch delivery
   deferred so callbacks fire after the exclusive section is released
   (a slow observer must not extend writer-held time).  Each sub-request
   gets its own [net.server.<verb>] span inside the lock, so a traced
   BATCH shows one child span per sub-request under the batch span (and
   a Single shows dispatch time distinct from lock wait). *)
let dispatch_locked t ~user ~access ~scope reqs =
  let dispatch_one tokens =
    let verb =
      match tokens with v :: _ -> String.lowercase_ascii v | [] -> "(empty)"
    in
    Obs.with_span ("net.server." ^ verb) (fun () ->
        Service.dispatch ~user t.fb tokens)
  in
  let run () = List.map dispatch_one reqs in
  let replies, flush =
    locked t ~access ~scope (fun () ->
        match access with
        | Service.Read -> (run (), fun () -> ())
        | Service.Write -> Forkbase.with_deferred_watch t.fb run)
  in
  flush ();
  replies

(* The remote caller's trace position, as an Obs context: request spans
   opened under it join the client's trace, with the client span as
   (remote) parent. *)
let span_ctx trace =
  Option.map
    (fun (tr : Frame.trace) ->
      { Obs.trace_id = tr.trace_id; span_id = tr.parent_span })
    trace

(* Slow-request log: a structured Warn event plus a /tracez ring entry
   carrying the request's span tree, rendered now — by the time an
   operator looks, the span ring would have evicted it. *)
let record_slow t ~verb ~user ~ms trace_ref =
  match !trace_ref with
  | None -> ()
  | Some (ctx : Obs.context) ->
    let trace_id = ctx.trace_id in
    Obs.log_event ~fields:
        [ ("verb", verb); ("user", user);
          ("ms", Printf.sprintf "%.3f" ms); ("trace", trace_id) ]
      Obs.Warn "slow request";
    let entry =
      { st_time = Unix.gettimeofday (); st_verb = verb; st_user = user;
        st_ms = ms; st_trace_id = trace_id;
        st_tree = Obs.render_trace trace_id }
    in
    Mutex.protect t.state (fun () ->
        let keep =
          if List.length t.slow_traces >= max_slow_traces then
            List.filteri (fun i _ -> i < max_slow_traces - 1) t.slow_traces
          else t.slow_traces
        in
        t.slow_traces <- entry :: keep)

(* ------------------------- request processing ------------------------- *)

(* Execute one decoded request and produce the encoded response payload,
   echoing the request's sequence id.  Transport-free: the threaded
   engine runs it on the connection thread, the event engine on a worker
   thread — in both cases under the striped rwlocks. *)
let process t ~user ~trace ~seq req =
  let user = if user = "" then t.cfg.default_user else user in
  let ctx = span_ctx trace in
  (* Captured inside the request span: its own context (the trace id is
     minted there when the client sent no header), for slow-log
     attribution after the span closes. *)
  let trace_ref = ref None in
  let t0 = Unix.gettimeofday () in
  let label, resp =
    match req with
    | Frame.Single tokens ->
      let verb =
        match tokens with v :: _ -> String.lowercase_ascii v | [] -> ""
      in
      let access, scope = Service.classify tokens in
      Obs.incr
        (match access with
         | Service.Read -> read_verbs_total
         | Service.Write -> write_verbs_total);
      let reply =
        Obs.with_span ?ctx
          ~attrs:[ ("verb", verb); ("user", user) ]
          "net.server.request"
          (fun () ->
            trace_ref := Obs.current_context ();
            Obs.time (verb_hist verb) (fun () ->
                match dispatch_locked t ~user ~access ~scope [ tokens ] with
                | [ r ] -> r
                | _ -> Error (Errors.Invalid "internal: reply count mismatch")))
      in
      (match reply with
       | Ok _ -> ()
       | Error _ -> Obs.incr request_errors);
      (verb, Frame.One reply)
    | Frame.Batch reqs ->
      Obs.incr batches_total;
      Obs.add batch_subrequests_total (List.length reqs);
      let access, scope = classify_batch reqs in
      let replies =
        Obs.with_span ?ctx
          ~attrs:[ ("n", string_of_int (List.length reqs)); ("user", user) ]
          "net.server.batch"
          (fun () ->
            trace_ref := Obs.current_context ();
            Obs.time (verb_hist "batch") (fun () ->
                dispatch_locked t ~user ~access ~scope reqs))
      in
      List.iter
        (function Ok _ -> () | Error _ -> Obs.incr request_errors)
        replies;
      ("batch", Frame.Many replies)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  if ms >= t.cfg.slow_ms then record_slow t ~verb:label ~user ~ms trace_ref;
  Frame.encode_response ?seq resp

(* SUBSCRIBE/UNSUBSCRIBE are connection verbs, not store verbs: they
   mutate loop-owned registration state, so the loop handles them inline
   (they never visit the worker pool or the locks). *)
let subscription_of_tokens tokens =
  match tokens with
  | [ _ ] -> Ok (None, None)
  | [ _; key ] -> Ok ((if key = "*" then None else Some key), None)
  | [ _; key; branch ] ->
    Ok
      ( (if key = "*" then None else Some key),
        (if branch = "*" then None else Some branch) )
  | _ -> Error (Errors.Invalid "usage: subscribe [key|*] [branch|*]")

(* ------------------------- threaded engine ------------------------- *)

(* Best-effort error/result write; [false] means the peer is gone (or
   wedged past the deadline) and the connection loop should end.  The
   read deadline doubles as the write deadline: a peer that stops
   draining its socket cannot pin a connection thread forever. *)
let respond t fd resp =
  let timeout_s =
    if t.cfg.read_timeout_s > 0.0 then Some t.cfg.read_timeout_s else None
  in
  match Frame.write_frame ?timeout_s fd resp with
  | Ok () -> true
  | Error _ -> false
  | exception Unix.Unix_error _ -> false

let is_conn_verb req =
  match req with
  | Frame.Single (v :: _) -> (
    match String.lowercase_ascii v with
    | "subscribe" | "unsubscribe" -> true
    | _ -> false)
  | _ -> false

let serve_request_threaded t fd payload =
  Obs.incr frames_total;
  match Frame.decode_request payload with
  | Error e ->
    Obs.incr proto_errors;
    (* Frame boundaries are intact, only this payload was bad: answer and
       keep the connection. *)
    respond t fd
      (Frame.encode_response
         (Frame.One (Error (Errors.Invalid ("bad request: " ^ e)))))
  | Ok (_, _, seq, req) when is_conn_verb req ->
    (* The threaded engine has no push path: every thread blocks in read
       between requests, so there is nowhere to deliver events from. *)
    respond t fd
      (Frame.encode_response ?seq
         (Frame.One
            (Error
               (Errors.Invalid
                  "subscribe requires the event-loop server (serving \
                   --threaded)"))))
  | Ok (user, trace, seq, req) -> respond t fd (process t ~user ~trace ~seq req)

let handle_conn t id fd =
  Obs.incr conns_total;
  let timeout_s =
    if t.cfg.read_timeout_s > 0.0 then Some t.cfg.read_timeout_s else None
  in
  let rec loop () =
    match Frame.read_frame ~max_frame:t.cfg.max_frame ?timeout_s fd with
    | Ok payload -> if serve_request_threaded t fd payload then loop ()
    | Error Frame.Eof -> ()
    | Error Frame.Timeout ->
      Obs.incr proto_errors;
      ignore
        (respond t fd
           (Frame.encode_response
              (Frame.One
                 (Error (Errors.Transient "read timeout: closing connection")))))
    | Error (Frame.Too_large _ as e) | Error (Frame.Malformed _ as e) ->
      (* The length prefix was consumed without its payload: the stream
         is desynchronized beyond repair — report and hang up. *)
      Obs.incr proto_errors;
      ignore
        (respond t fd
           (Frame.encode_response
              (Frame.One (Error (Errors.Invalid (Frame.error_to_string e))))))
    | exception Unix.Unix_error _ -> Obs.incr proto_errors
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown_quiet fd;
      close_quiet fd;
      Mutex.protect t.state (fun () ->
          t.conns_threaded <-
            List.filter (fun (i, _) -> i <> id) t.conns_threaded))
    loop

let accept_loop_threaded t =
  let rec go () =
    if is_running t then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let over =
          Mutex.protect t.state (fun () ->
              List.length t.conns_threaded >= t.cfg.max_conns)
        in
        if over then begin
          (* Thread budget protection: beyond max_conns each connection
             would cost another stack; shed instead of wedging. *)
          Obs.incr conns_shed_total;
          close_quiet fd
        end
        else begin
          let id =
            Mutex.protect t.state (fun () ->
                let id = t.next_id in
                t.next_id <- id + 1;
                t.conns_threaded <- (id, fd) :: t.conns_threaded;
                id)
          in
          ignore (Thread.create (fun () -> handle_conn t id fd) ())
        end;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ ->
        (* Listener closed: shutdown in progress. *)
        ()
  in
  go ()

(* ------------------------- event-loop engine ------------------------- *)

(* Wake the loop out of poll; best-effort (a full pipe already wakes). *)
let wake st =
  try ignore (Unix.write st.wake_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> ()

let worker_loop t st () =
  let rec next () =
    Mutex.lock st.jobs_mu;
    let rec wait () =
      if not (Mutex.protect t.state (fun () -> t.running)) then None
      else if Queue.is_empty st.jobs then begin
        Condition.wait st.jobs_cond st.jobs_mu;
        wait ()
      end
      else Some (Queue.pop st.jobs)
    in
    let job = wait () in
    Mutex.unlock st.jobs_mu;
    match job with
    | None -> ()
    | Some j ->
      let payload =
        try process t ~user:j.j_user ~trace:j.j_trace ~seq:j.j_seq j.j_req
        with e ->
          Frame.encode_response ?seq:j.j_seq
            (Frame.One
               (Error
                  (Errors.Invalid
                     ("internal dispatch failure: " ^ Printexc.to_string e))))
      in
      Mutex.protect st.done_mu (fun () ->
          Queue.push
            { c_cid = j.j_cid; c_serial = j.j_serial;
              c_wire = Frame.encode_frame payload }
            st.done_q);
      wake st;
      next ()
  in
  next ()

(* Append wire bytes to a connection's outbox and try to push them out
   immediately (saves a poll round trip on the common uncongested
   path). *)
let rec flush_out st conn =
  if Queue.is_empty conn.outq then ()
  else
    let head = Queue.peek conn.outq in
    let len = String.length head - conn.out_off in
    match
      Unix.write conn.fd (Bytes.unsafe_of_string head) conn.out_off len
    with
    | 0 -> ()
    | n ->
      conn.out_bytes <- conn.out_bytes - n;
      conn.last_write_progress <- Unix.gettimeofday ();
      if n = len then begin
        ignore (Queue.pop conn.outq);
        conn.out_off <- 0;
        flush_out st conn
      end
      else conn.out_off <- conn.out_off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out st conn
    | exception Unix.Unix_error _ ->
      (* Peer is gone; the next poll flags the fd and the loop reaps it. *)
      conn.close_after_flush <- true;
      Queue.clear conn.outq;
      conn.out_bytes <- 0;
      conn.out_off <- 0

(* The mask this connection should be registered with right now.
   Backpressure lives here: a connection whose outbox or pipeline is
   full is not read from — bytes accumulate in the kernel buffer and
   eventually stall the peer's sends. *)
let desired_interest t conn =
  (if
     (not conn.close_after_flush)
     && conn.out_bytes < t.cfg.max_outbox
     && Queue.length conn.parked < 2 * t.cfg.max_pipeline
   then Ev.pollin
   else 0)
  lor (if Queue.is_empty conn.outq then 0 else Ev.pollout)

(* Re-register the connection if its desired mask drifted from what Ev
   has.  Cheap when nothing changed, so call it after any state
   mutation; guarded so a just-reaped connection is left alone. *)
let sync_interest t st conn =
  if Hashtbl.mem st.conns conn.cid then begin
    let want = desired_interest t conn in
    if want <> conn.interest then begin
      Ev.modify st.ev conn.fd want;
      conn.interest <- want
    end
  end

let enqueue_out t st conn wire =
  let was_empty = Queue.is_empty conn.outq in
  Queue.push wire conn.outq;
  conn.out_bytes <- conn.out_bytes + String.length wire;
  if conn.out_bytes > Atomic.get st.outbox_hwm then
    Atomic.set st.outbox_hwm conn.out_bytes;
  if was_empty then begin
    conn.last_write_progress <- Unix.gettimeofday ();
    flush_out st conn
  end;
  sync_interest t st conn

let close_conn t st conn =
  Hashtbl.remove st.conns conn.cid;
  Hashtbl.remove st.by_fd (Ev.fd_int conn.fd);
  Ev.remove st.ev conn.fd;
  List.iter (fun sid -> Hashtbl.remove st.subs sid) conn.conn_subs;
  Atomic.set st.open_conns (Hashtbl.length st.conns);
  shutdown_quiet conn.fd;
  close_quiet conn.fd;
  ignore t

let reply_inline t st conn ?seq reply =
  enqueue_out t st conn
    (Frame.encode_frame (Frame.encode_response ?seq (Frame.One reply)))

(* Handle SUBSCRIBE/UNSUBSCRIBE on the loop thread. *)
let handle_conn_verb t st conn ~seq tokens =
  match tokens with
  | v :: _ when String.lowercase_ascii v = "subscribe" -> (
    match subscription_of_tokens tokens with
    | Error e -> reply_inline t st conn ?seq (Error e)
    | Ok (key, branch) ->
      let sid = st.next_sub in
      st.next_sub <- sid + 1;
      Hashtbl.replace st.subs sid (conn.cid, key, branch);
      conn.conn_subs <- sid :: conn.conn_subs;
      Obs.incr subscribes_total;
      ignore t;
      reply_inline t st conn ?seq (Ok (string_of_int sid)))
  | _ :: rest -> (
    (* unsubscribe *)
    match rest with
    | [ sid_s ] -> (
      match int_of_string_opt sid_s with
      | Some sid when List.mem sid conn.conn_subs ->
        Hashtbl.remove st.subs sid;
        conn.conn_subs <- List.filter (fun s -> s <> sid) conn.conn_subs;
        reply_inline t st conn ?seq (Ok "")
      | _ ->
        reply_inline t st conn ?seq
          (Error (Errors.Invalid ("unknown subscription: " ^ sid_s))))
    | _ ->
      reply_inline t st conn ?seq
        (Error (Errors.Invalid "usage: unsubscribe <id>")))
  | [] -> ()

(* Dispatch parked frames to the worker pool, respecting the pipeline
   cap and the ordering contract: an un-sequenced request admits no
   concurrent siblings (legacy strict request/response), while tagged
   requests flow freely up to [max_pipeline]. *)
let drain_parked t st conn =
  let pushed = ref false in
  let rec go () =
    if
      (not conn.close_after_flush)
      && (not conn.serial_busy)
      && conn.inflight < t.cfg.max_pipeline
      && not (Queue.is_empty conn.parked)
    then begin
      let trace, seq, user, req = Queue.peek conn.parked in
      if is_conn_verb req then begin
        ignore (Queue.pop conn.parked);
        (match req with
         | Frame.Single tokens -> handle_conn_verb t st conn ~seq tokens
         | Frame.Batch _ -> ());
        go ()
      end
      else if seq = None && conn.inflight > 0 then
        (* An untagged request's reply position is its arrival position:
           wait until the pipeline is empty before admitting it. *)
        ()
      else begin
        ignore (Queue.pop conn.parked);
        conn.inflight <- conn.inflight + 1;
        if seq = None then conn.serial_busy <- true;
        Mutex.lock st.jobs_mu;
        Queue.push
          { j_cid = conn.cid; j_seq = seq; j_serial = (seq = None);
            j_user = user; j_trace = trace; j_req = req }
          st.jobs;
        Mutex.unlock st.jobs_mu;
        pushed := true;
        go ()
      end
    end
  in
  go ();
  if !pushed then Condition.broadcast st.jobs_cond

(* Parse as many complete frames as the input buffer holds; park each
   decoded request.  Returns [false] when the stream is desynchronized
   (oversize/malformed length) and the connection must wind down. *)
let ingest t st conn =
  let buf = conn.inbuf in
  let n = String.length buf in
  let rec go pos =
    if pos >= n then begin
      conn.inbuf <- "";
      true
    end
    else
      match Frame.decode_frame ~max_frame:t.cfg.max_frame ~pos buf with
      | Ok `Need_more ->
        conn.inbuf <- (if pos = 0 then buf else String.sub buf pos (n - pos));
        true
      | Ok (`Frame (payload, next)) ->
        Obs.incr frames_total;
        (match Frame.decode_request payload with
         | Error e ->
           Obs.incr proto_errors;
           reply_inline t st conn
             (Error (Errors.Invalid ("bad request: " ^ e)))
         | Ok (user, trace, seq, req) ->
           let user = if user = "" then t.cfg.default_user else user in
           Queue.push (trace, seq, user, req) conn.parked);
        go next
      | Error e ->
        Obs.incr proto_errors;
        reply_inline t st conn
          (Error (Errors.Invalid (Frame.error_to_string e)));
        conn.inbuf <- "";
        false
  in
  go 0

let read_chunk = 65536

let handle_readable t st conn scratch =
  match Unix.read conn.fd scratch 0 read_chunk with
  | 0 ->
    (* EOF.  Drop the connection; in-flight replies have nowhere to go. *)
    close_conn t st conn
  | n ->
    conn.last_read <- Unix.gettimeofday ();
    conn.inbuf <- conn.inbuf ^ Bytes.sub_string scratch 0 n;
    if ingest t st conn then drain_parked t st conn
    else conn.close_after_flush <- true;
    sync_interest t st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t st conn

(* Completion and push delivery: drain worker results into outboxes and
   fan branch-head events out to matching subscriptions. *)
let drain_done t st =
  let completions, pushes =
    Mutex.protect st.done_mu (fun () ->
        let c = Queue.fold (fun acc x -> x :: acc) [] st.done_q in
        let p = Queue.fold (fun acc x -> x :: acc) [] st.pushes in
        Queue.clear st.done_q;
        Queue.clear st.pushes;
        (List.rev c, List.rev p))
  in
  List.iter
    (fun c ->
      match Hashtbl.find_opt st.conns c.c_cid with
      | None -> ()  (* connection died while the job ran *)
      | Some conn ->
        conn.inflight <- conn.inflight - 1;
        if c.c_serial then conn.serial_busy <- false;
        enqueue_out t st conn c.c_wire;
        drain_parked t st conn;
        sync_interest t st conn)
    completions;
  List.iter
    (fun ((ev : Forkbase.head_event), trace) ->
      Hashtbl.iter
        (fun sid (cid, key, branch) ->
          let matches =
            (match key with None -> true | Some k -> String.equal k ev.key)
            && (match branch with
                | None -> true
                | Some b -> String.equal b ev.branch)
          in
          if matches then
            match Hashtbl.find_opt st.conns cid with
            | None -> ()
            | Some conn ->
              Obs.incr events_pushed_total;
              let frame =
                Frame.encode_response ?trace
                  (Frame.Event
                     { Frame.sub_id = sid; ev_key = ev.key;
                       ev_branch = ev.branch;
                       new_head = Forkbase.version_string ev.new_head;
                       old_head =
                         Option.map Forkbase.version_string ev.old_head })
              in
              enqueue_out t st conn (Frame.encode_frame frame))
        st.subs)
    pushes

let accept_ready t st =
  let rec go budget =
    if budget > 0 then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Hashtbl.length st.conns >= t.cfg.max_conns then begin
          Obs.incr conns_shed_total;
          close_quiet fd
        end
        else begin
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          Unix.set_nonblock fd;
          Obs.incr conns_total;
          let cid =
            Mutex.protect t.state (fun () ->
                let id = t.next_id in
                t.next_id <- id + 1;
                id)
          in
          let now = Unix.gettimeofday () in
          let conn =
            { cid; fd; inbuf = ""; parked = Queue.create ();
              outq = Queue.create (); out_off = 0; out_bytes = 0;
              inflight = 0; serial_busy = false; last_read = now;
              last_write_progress = now; conn_subs = [];
              close_after_flush = false; interest = Ev.pollin }
          in
          Hashtbl.replace st.conns cid conn;
          Hashtbl.replace st.by_fd (Ev.fd_int fd) conn;
          Ev.modify st.ev fd Ev.pollin;
          Atomic.set st.open_conns (Hashtbl.length st.conns)
        end;
        go (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go budget
      | exception Unix.Unix_error _ -> ()
  in
  go 64

(* Timeout sweep: idle-read deadlines (quiet connections with nothing in
   flight and no subscriptions), and the write-stall deadline for peers
   that stopped draining their socket.  The sweep walks every connection
   — O(conns) — so it runs on a clock, not per wakeup: under load the
   loop wakes thousands of times a second and a per-wakeup walk would
   put the connection count back into the per-request cost. *)
let sweep_interval t =
  let quarter x = if x > 0.0 then x /. 4.0 else infinity in
  Float.min 1.0
    (Float.min (quarter t.cfg.read_timeout_s) (quarter t.cfg.write_stall_s))

let sweep_timeouts t st now =
  let victims = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      let idle_dead =
        t.cfg.read_timeout_s > 0.0
        && conn.inflight = 0
        && Queue.is_empty conn.outq
        && Queue.is_empty conn.parked
        && conn.conn_subs = []
        && (not conn.close_after_flush)
        && now -. conn.last_read > t.cfg.read_timeout_s
      in
      let stalled =
        t.cfg.write_stall_s > 0.0
        && (not (Queue.is_empty conn.outq))
        && now -. conn.last_write_progress > t.cfg.write_stall_s
      in
      if stalled then begin
        Obs.incr proto_errors;
        Obs.incr stall_disconnects_total;
        victims := (`Drop, conn) :: !victims
      end
      else if idle_dead then begin
        Obs.incr proto_errors;
        victims := (`Timeout, conn) :: !victims
      end
      else if conn.close_after_flush && Queue.is_empty conn.outq then
        victims := (`Drop, conn) :: !victims)
    st.conns;
  List.iter
    (fun (why, conn) ->
      (match why with
       | `Timeout ->
         reply_inline t st conn
           (Error (Errors.Transient "read timeout: closing connection"))
       | `Drop -> ());
      close_conn t st conn)
    !victims

let drain_wake st =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read st.wake_r b 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let event_loop t st () =
  let scratch = Bytes.create read_chunk in
  let listen_i = Ev.fd_int t.listen_fd in
  let wake_i = Ev.fd_int st.wake_r in
  Ev.modify st.ev t.listen_fd Ev.pollin;
  Ev.modify st.ev st.wake_r Ev.pollin;
  let sweep_every = sweep_interval t in
  let rec go () =
    if is_running t then begin
      let ready = Ev.wait st.ev ~timeout_ms:100 in
      for i = 0 to ready - 1 do
        let fdi = Ev.ready_fd st.ev i in
        let re = Ev.ready_events st.ev i in
        if fdi = listen_i then begin
          if Ev.readable re then accept_ready t st
        end
        else if fdi = wake_i then begin
          if Ev.readable re then drain_wake st
        end
        else
          match Hashtbl.find_opt st.by_fd fdi with
          | None -> ()  (* reaped by an earlier event in this batch *)
          | Some conn ->
            if Ev.errored re then close_conn t st conn
            else begin
              if Ev.writable re then flush_out st conn;
              if Ev.readable re && Hashtbl.mem st.conns conn.cid then
                handle_readable t st conn scratch;
              sync_interest t st conn
            end
      done;
      drain_done t st;
      let now = Unix.gettimeofday () in
      if now -. st.last_sweep >= sweep_every then begin
        st.last_sweep <- now;
        sweep_timeouts t st now
      end;
      go ()
    end
  in
  (try go ()
   with e ->
     Obs.log_event
       ~fields:[ ("error", Printexc.to_string e) ]
       Obs.Error "event loop crashed");
  (* Wind down: reap every connection; the listener is closed by stop. *)
  Hashtbl.iter (fun _ conn -> shutdown_quiet conn.fd; close_quiet conn.fd)
    st.conns;
  Hashtbl.reset st.conns;
  Hashtbl.reset st.by_fd;
  Hashtbl.reset st.subs;
  Atomic.set st.open_conns 0;
  Ev.close st.ev

(* ------------------------- scrape endpoints ------------------------- *)

type loop_stats = {
  ls_conns : int;
  ls_outbox_hwm : int;
  ls_worker_queue : int;
  ls_subscriptions : int;
}

let loop_stats t =
  match t.ev with
  | None -> None
  | Some st ->
    Some
      { ls_conns = Atomic.get st.open_conns;
        ls_outbox_hwm = Atomic.get st.outbox_hwm;
        ls_worker_queue =
          Mutex.protect st.jobs_mu (fun () -> Queue.length st.jobs);
        ls_subscriptions =
          (* loop-owned table; a racy size read is fine for telemetry *)
          Hashtbl.length st.subs }

let active_conns t =
  match t.ev with
  | Some st -> Atomic.get st.open_conns
  | None -> Mutex.protect t.state (fun () -> List.length t.conns_threaded)

let healthz_body t =
  let loop_fields =
    match loop_stats t, t.ev with
    | Some ls, Some st ->
      Printf.sprintf
        ",\"loop\":{\"backend\":\"%s\",\"connections\":%d,\
         \"outbox_hwm_bytes\":%d,\"worker_queue_depth\":%d,\
         \"subscriptions\":%d,\"workers\":%d}"
        (Ev.backend_name st.ev) ls.ls_conns ls.ls_outbox_hwm
        ls.ls_worker_queue ls.ls_subscriptions t.cfg.workers
    | _ -> ""
  in
  Printf.sprintf
    "{\"status\":\"ok\",\"mode\":\"%s\",\"uptime_s\":%.1f,\
     \"connections_active\":%d,\"port\":%d,\"slow_traces\":%d%s}"
    (match t.cfg.mode with `Event -> "event" | `Threaded -> "threaded")
    (Unix.gettimeofday () -. t.started_at)
    (active_conns t) t.bound_port
    (Mutex.protect t.state (fun () -> List.length t.slow_traces))
    loop_fields

let tracez_body t =
  let entries = Mutex.protect t.state (fun () -> t.slow_traces) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "slow requests (threshold %.1f ms, %d kept)\n\n"
       t.cfg.slow_ms (List.length entries));
  if entries = [] then Buffer.add_string buf "(none recorded)\n"
  else
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "[%.3f] %s user=%s %.3f ms trace=%s\n%s\n" e.st_time
             e.st_verb e.st_user e.st_ms e.st_trace_id e.st_tree))
      entries;
  Buffer.contents buf

(* The sidecar's route table.  Everything it serves is read-only
   telemetry rendered at request time; it never touches the store, so a
   scrape cannot contend with the binary protocol path. *)
let http_handler t path =
  match path with
  | "/metrics" -> Some (Http.text (Obs.dump_prometheus ()))
  | "/healthz" -> Some (Http.json (healthz_body t))
  | "/tracez" -> Some (Http.text (tracez_body t))
  | "/trace.json" -> Some (Http.json (Obs.dump_chrome_trace ()))
  | "/" ->
    Some
      (Http.text
         "forkbase metrics sidecar\n\
          /metrics    Prometheus exposition\n\
          /healthz    liveness + event-loop health JSON\n\
          /tracez     recent slow-request traces\n\
          /trace.json Chrome trace_event dump of the span ring\n")
  | _ -> None

let slow_trace_count t =
  Mutex.protect t.state (fun () -> List.length t.slow_traces)

(* ------------------------- lifecycle ------------------------- *)

let port t = t.bound_port

let metrics_port t = Option.map Http.port t.metrics_http

let saver_loop t =
  (* Short ticks instead of one long sleep so stop is prompt. *)
  let tick = 0.05 in
  let rec go elapsed =
    if is_running t then begin
      Thread.delay tick;
      let elapsed = elapsed +. tick in
      if elapsed >= t.cfg.save_every_s then begin
        do_save t;
        go 0.0
      end
      else go elapsed
    end
  in
  go 0.0

let start ?(config = default_config) ?save fb =
  match Frame.resolve_host config.host with
  | Error e -> Error e
  | Ok addr -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, config.port));
         Unix.listen fd config.backlog
       with e ->
         close_quiet fd;
         raise e);
      fd
    with
    | fd ->
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      (* A peer that vanished mid-write must surface as EPIPE on the
         worker thread, not kill the whole daemon. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let ev_state =
        match config.mode with
        | `Threaded -> None
        | `Event ->
          let wake_r, wake_w = Unix.pipe () in
          Unix.set_nonblock wake_r;
          Unix.set_nonblock wake_w;
          Unix.set_nonblock fd;
          Some
            { ev = Ev.create (); conns = Hashtbl.create 256;
              by_fd = Hashtbl.create 256; subs = Hashtbl.create 16;
              next_sub = 1; last_sweep = 0.0;
              wake_r; wake_w; jobs = Queue.create ();
              jobs_mu = Mutex.create (); jobs_cond = Condition.create ();
              done_mu = Mutex.create (); done_q = Queue.create ();
              pushes = Queue.create (); open_conns = Atomic.make 0;
              outbox_hwm = Atomic.make 0; loop_thread = None;
              worker_threads = []; watch = None }
      in
      let t =
        { cfg = config; fb; save; listen_fd = fd; bound_port;
          started_at = Unix.gettimeofday ();
          locks = Rwlock.Striped.create ~stripes:(max 1 config.stripes) ();
          state = Mutex.create ();
          running = true; conns_threaded = []; next_id = 0;
          accept_thread = None; saver_thread = None;
          metrics_http = None; slow_traces = []; ev = ev_state }
      in
      Obs.gauge "fb.net.connections_active" (fun () ->
          float_of_int (active_conns t));
      (match t.ev with
       | None -> ()
       | Some st ->
         Obs.gauge "fb.net.loop.connections" (fun () ->
             float_of_int (Atomic.get st.open_conns));
         Obs.gauge "fb.net.loop.outbox_hwm_bytes" (fun () ->
             float_of_int (Atomic.get st.outbox_hwm));
         Obs.gauge "fb.net.loop.worker_queue_depth" (fun () ->
             float_of_int
               (Mutex.protect st.jobs_mu (fun () -> Queue.length st.jobs)));
         Obs.gauge "fb.net.loop.subscriptions" (fun () ->
             float_of_int (Hashtbl.length st.subs)));
      (match config.metrics_port with
       | None -> ()
       | Some mport -> (
         match Http.start ~host:config.host ~port:mport (http_handler t) with
         | Ok http -> t.metrics_http <- Some http
         | Error e ->
           (* A node that cannot serve its binary port must not start;
              one that cannot serve telemetry should — log and go on. *)
           Obs.log_event ~fields:[ ("error", e) ] Obs.Error
             "metrics sidecar failed to start"));
      (match t.ev with
       | None -> t.accept_thread <- Some (Thread.create accept_loop_threaded t)
       | Some st ->
         (* Every branch-head movement — whoever caused it — funnels into
            the loop, which fans it out to matching subscriptions. *)
         st.watch <-
           Some
             (Forkbase.watch fb (fun ev ->
                  let trace =
                    Option.map
                      (fun (c : Obs.context) ->
                        { Frame.trace_id = c.trace_id;
                          parent_span = c.span_id })
                      (Obs.current_context ())
                  in
                  Mutex.protect st.done_mu (fun () ->
                      Queue.push (ev, trace) st.pushes);
                  wake st));
         st.loop_thread <- Some (Thread.create (event_loop t st) ());
         st.worker_threads <-
           List.init (max 1 config.workers) (fun _ ->
               Thread.create (worker_loop t st) ()));
      if config.save_every_s > 0.0 && save <> None then
        t.saver_thread <- Some (Thread.create saver_loop t);
      Obs.log_event
        ~fields:
          [ ("host", config.host); ("port", string_of_int bound_port);
            ("mode",
             match config.mode with `Event -> "event" | `Threaded -> "threaded");
            ("metrics_port",
             match metrics_port t with
             | Some p -> string_of_int p
             | None -> "off") ]
        Obs.Info "server started";
      Ok t
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "listen %s:%d: %s" config.host config.port
           (Unix.error_message err)))

let stop t =
  let was_running =
    Mutex.protect t.state (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (match t.ev with
     | None ->
       (* Wake the accept loop, then kick every live connection: their
          blocking reads see EOF and the threads unwind through their
          [finally] (closing fds and deregistering themselves). *)
       shutdown_quiet t.listen_fd;
       close_quiet t.listen_fd;
       List.iter
         (fun (_, fd) -> shutdown_quiet fd)
         (Mutex.protect t.state (fun () -> t.conns_threaded));
       let deadline = Unix.gettimeofday () +. 5.0 in
       while
         Mutex.protect t.state (fun () -> t.conns_threaded <> [])
         && Unix.gettimeofday () < deadline
       do
         Thread.delay 0.01
       done;
       (match t.accept_thread with Some th -> Thread.join th | None -> ())
     | Some st ->
       (* Detach the watch first: a late flush must not write into a
          pipe we are about to close. *)
       (match st.watch with
        | Some w ->
          Forkbase.unwatch t.fb w;
          st.watch <- None
        | None -> ());
       wake st;
       (match st.loop_thread with Some th -> Thread.join th | None -> ());
       Mutex.protect st.jobs_mu (fun () ->
           Condition.broadcast st.jobs_cond);
       List.iter Thread.join st.worker_threads;
       st.worker_threads <- [];
       shutdown_quiet t.listen_fd;
       close_quiet t.listen_fd;
       close_quiet st.wake_r;
       close_quiet st.wake_w);
    (match t.saver_thread with Some th -> Thread.join th | None -> ());
    (match t.metrics_http with
     | Some http ->
       Http.stop http;
       t.metrics_http <- None
     | None -> ());
    (* Final save so SIGTERM leaves the branch table current on disk. *)
    do_save t;
    Obs.log_event
      ~fields:[ ("port", string_of_int t.bound_port) ]
      Obs.Info "server stopped"
  end

let run t =
  let stop_requested = Atomic.make false in
  let handler _ = Atomic.set stop_requested true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () ->
      while (not (Atomic.get stop_requested)) && is_running t do
        Thread.delay 0.1
      done;
      stop t)
