module Service = Fb_core.Service
module Errors = Fb_core.Errors
module Forkbase = Fb_core.Forkbase
module Obs = Fb_obs.Obs

type config = {
  host : string;
  port : int;
  backlog : int;
  max_frame : int;
  read_timeout_s : float;
  save_every_s : float;
  default_user : string;
  concurrency : [ `Striped | `Coarse ];
  stripes : int;
  metrics_port : int option;
  slow_ms : float;
}

(* FB_SLOW_MS seeds the default slow-request threshold so an operator
   can turn the slow log on without touching the launch command;
   [infinity] disables it. *)
let default_slow_ms =
  match Sys.getenv_opt "FB_SLOW_MS" with
  | Some s -> (
    match float_of_string_opt s with Some v when v >= 0.0 -> v | _ -> infinity)
  | None -> infinity

let default_config =
  { host = "127.0.0.1";
    port = 7447;
    backlog = 64;
    max_frame = Frame.default_max_frame;
    read_timeout_s = 30.0;
    save_every_s = 5.0;
    default_user = "anonymous";
    concurrency = `Striped;
    stripes = Rwlock.Striped.default_stripes;
    metrics_port = None;
    slow_ms = default_slow_ms }

(* One entry of the slow-request ring behind /tracez: enough to render
   "what was slow, when, for whom" with the span tree captured at the
   moment the request finished (the ring would have evicted it later). *)
type slow_trace = {
  st_time : float;
  st_verb : string;
  st_user : string;
  st_ms : float;
  st_trace_id : string;
  st_tree : string;
}

let max_slow_traces = 32

type t = {
  cfg : config;
  fb : Forkbase.t;
  save : (unit -> unit) option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  started_at : float;
  (* Striped reader-writer locking replaces PR 4's coarse instance
     mutex: read-only verbs share their key's stripe, mutating verbs
     take it exclusively, instance-wide verbs span all stripes. *)
  locks : Rwlock.Striped.t;
  state : Mutex.t;    (* guards the mutable fields below *)
  mutable running : bool;
  mutable conns : (int * Unix.file_descr) list;
  mutable next_id : int;
  mutable accept_thread : Thread.t option;
  mutable saver_thread : Thread.t option;
  mutable metrics_http : Http.t option;
  mutable slow_traces : slow_trace list;  (* newest first, bounded *)
}

(* ------------------------- metrics ------------------------- *)

let conns_total = Obs.counter "fb.net.connections"
let frames_total = Obs.counter "fb.net.frames"
let proto_errors = Obs.counter "fb.net.errors"
let request_errors = Obs.counter "fb.net.request_errors"
let save_errors = Obs.counter "fb.net.save_errors"
let batches_total = Obs.counter "fb.net.batches"
let batch_subrequests_total = Obs.counter "fb.net.batch_subrequests"
let read_verbs_total = Obs.counter "fb.net.read_verbs"
let write_verbs_total = Obs.counter "fb.net.write_verbs"

(* Histograms are created per verb name, so the set must be closed — a
   peer sending garbage verbs must not grow the registry unboundedly. *)
let verb_hists =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun v ->
      let metric = String.map (fun c -> if c = '-' then '_' else c) v in
      Hashtbl.replace tbl v
        (Obs.histogram (Printf.sprintf "fb.net.%s_seconds" metric)))
    [ "put"; "put-csv"; "get"; "get-at"; "head"; "latest"; "list"; "log";
      "branch"; "rename"; "meta"; "diff"; "merge"; "verify"; "stat";
      "metrics"; "metrics-json"; "fsck"; "scrub"; "get-json"; "diff-json";
      "log-json"; "stat-json"; "latest-json"; "prove"; "batch" ];
  tbl

let other_hist = Obs.histogram "fb.net.other_seconds"

let verb_hist verb =
  match Hashtbl.find_opt verb_hists verb with
  | Some h -> h
  | None -> other_hist

(* ------------------------- helpers ------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let is_running t = Mutex.protect t.state (fun () -> t.running)

let do_save t =
  match t.save with
  | None -> ()
  | Some save ->
    (* The save serializes the branch/tag tables: exclusive across the
       whole instance so it captures a consistent snapshot. *)
    Rwlock.Striped.with_global t.locks ~mode:`Write (fun () ->
        try save () with _ -> Obs.incr save_errors)

(* ------------------------- locking ------------------------- *)

let lock_mode = function Service.Read -> `Read | Service.Write -> `Write

(* One lock acquisition for the whole request, shaped by the verb
   classification.  [`Coarse] degrades every request to a global
   exclusive section — the PR 4 behavior, kept selectable so the
   scaling benchmark (and a worried operator) can A/B the two. *)
let locked t ~access ~scope f =
  match t.cfg.concurrency with
  | `Coarse -> Rwlock.Striped.with_global t.locks ~mode:`Write f
  | `Striped -> (
    let mode = lock_mode access in
    match scope with
    | Service.Key key -> Rwlock.Striped.with_key t.locks ~mode key f
    | Service.Global -> Rwlock.Striped.with_global t.locks ~mode f)

(* A batch runs under a single acquisition covering every sub-request:
   exclusive if any sub-request mutates, one stripe when all sub-requests
   name the same key, global otherwise. *)
let classify_batch reqs =
  List.fold_left
    (fun (access, scope) tokens ->
      let a, s = Service.classify tokens in
      let access = if a = Service.Write then Service.Write else access in
      let scope =
        match scope, s with
        | None, s -> Some s
        | Some (Service.Key k), Service.Key k' when String.equal k k' ->
          Some (Service.Key k)
        | Some _, _ -> Some Service.Global
      in
      (access, scope))
    (Service.Read, None) reqs
  |> fun (access, scope) ->
  (access, Option.value scope ~default:Service.Global)

(* Dispatch under the computed lock; mutations run with watch delivery
   deferred so callbacks fire after the exclusive section is released
   (a slow observer must not extend writer-held time).  Each sub-request
   gets its own [net.server.<verb>] span inside the lock, so a traced
   BATCH shows one child span per sub-request under the batch span (and
   a Single shows dispatch time distinct from lock wait). *)
let dispatch_locked t ~user ~access ~scope reqs =
  let dispatch_one tokens =
    let verb =
      match tokens with v :: _ -> String.lowercase_ascii v | [] -> "(empty)"
    in
    Obs.with_span ("net.server." ^ verb) (fun () ->
        Service.dispatch ~user t.fb tokens)
  in
  let run () = List.map dispatch_one reqs in
  let replies, flush =
    locked t ~access ~scope (fun () ->
        match access with
        | Service.Read -> (run (), fun () -> ())
        | Service.Write -> Forkbase.with_deferred_watch t.fb run)
  in
  flush ();
  replies

(* ------------------------- connection ------------------------- *)

(* Best-effort error/result write; [false] means the peer is gone (or
   wedged past the deadline) and the connection loop should end.  The
   read deadline doubles as the write deadline: a peer that stops
   draining its socket cannot pin a connection thread forever. *)
let respond t fd resp =
  let timeout_s =
    if t.cfg.read_timeout_s > 0.0 then Some t.cfg.read_timeout_s else None
  in
  match Frame.write_frame ?timeout_s fd (Frame.encode_response resp) with
  | Ok () -> true
  | Error _ -> false
  | exception Unix.Unix_error _ -> false

(* The remote caller's trace position, as an Obs context: request spans
   opened under it join the client's trace, with the client span as
   (remote) parent. *)
let span_ctx trace =
  Option.map
    (fun (tr : Frame.trace) ->
      { Obs.trace_id = tr.trace_id; span_id = tr.parent_span })
    trace

(* Slow-request log: a structured Warn event plus a /tracez ring entry
   carrying the request's span tree, rendered now — by the time an
   operator looks, the span ring would have evicted it. *)
let record_slow t ~verb ~user ~ms trace_ref =
  match !trace_ref with
  | None -> ()
  | Some (ctx : Obs.context) ->
    let trace_id = ctx.trace_id in
    Obs.log_event ~fields:
        [ ("verb", verb); ("user", user);
          ("ms", Printf.sprintf "%.3f" ms); ("trace", trace_id) ]
      Obs.Warn "slow request";
    let entry =
      { st_time = Unix.gettimeofday (); st_verb = verb; st_user = user;
        st_ms = ms; st_trace_id = trace_id;
        st_tree = Obs.render_trace trace_id }
    in
    Mutex.protect t.state (fun () ->
        let keep =
          if List.length t.slow_traces >= max_slow_traces then
            List.filteri (fun i _ -> i < max_slow_traces - 1) t.slow_traces
          else t.slow_traces
        in
        t.slow_traces <- entry :: keep)

let serve_request t fd payload =
  Obs.incr frames_total;
  match Frame.decode_request payload with
  | Error e ->
    Obs.incr proto_errors;
    (* Frame boundaries are intact, only this payload was bad: answer and
       keep the connection. *)
    respond t fd (Frame.One (Error (Errors.Invalid ("bad request: " ^ e))))
  | Ok (user, trace, req) ->
    let user = if user = "" then t.cfg.default_user else user in
    let ctx = span_ctx trace in
    (* Captured inside the request span: its own context (the trace id
       is minted there when the client sent no header), for slow-log
       attribution after the span closes. *)
    let trace_ref = ref None in
    let t0 = Unix.gettimeofday () in
    let label, resp =
      match req with
      | Frame.Single tokens ->
        let verb =
          match tokens with v :: _ -> String.lowercase_ascii v | [] -> ""
        in
        let access, scope = Service.classify tokens in
        Obs.incr
          (match access with
           | Service.Read -> read_verbs_total
           | Service.Write -> write_verbs_total);
        let reply =
          Obs.with_span ?ctx
            ~attrs:[ ("verb", verb); ("user", user) ]
            "net.server.request"
            (fun () ->
              trace_ref := Obs.current_context ();
              Obs.time (verb_hist verb) (fun () ->
                  match dispatch_locked t ~user ~access ~scope [ tokens ] with
                  | [ r ] -> r
                  | _ -> Error (Errors.Invalid "internal: reply count mismatch")))
        in
        (match reply with
         | Ok _ -> ()
         | Error _ -> Obs.incr request_errors);
        (verb, Frame.One reply)
      | Frame.Batch reqs ->
        Obs.incr batches_total;
        Obs.add batch_subrequests_total (List.length reqs);
        let access, scope = classify_batch reqs in
        let replies =
          Obs.with_span ?ctx
            ~attrs:[ ("n", string_of_int (List.length reqs)); ("user", user) ]
            "net.server.batch"
            (fun () ->
              trace_ref := Obs.current_context ();
              Obs.time (verb_hist "batch") (fun () ->
                  dispatch_locked t ~user ~access ~scope reqs))
        in
        List.iter
          (function Ok _ -> () | Error _ -> Obs.incr request_errors)
          replies;
        ("batch", Frame.Many replies)
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    if ms >= t.cfg.slow_ms then record_slow t ~verb:label ~user ~ms trace_ref;
    respond t fd resp

let handle_conn t id fd =
  Obs.incr conns_total;
  let timeout_s =
    if t.cfg.read_timeout_s > 0.0 then Some t.cfg.read_timeout_s else None
  in
  let rec loop () =
    match Frame.read_frame ~max_frame:t.cfg.max_frame ?timeout_s fd with
    | Ok payload -> if serve_request t fd payload then loop ()
    | Error Frame.Eof -> ()
    | Error Frame.Timeout ->
      Obs.incr proto_errors;
      ignore
        (respond t fd
           (Frame.One
              (Error (Errors.Transient "read timeout: closing connection"))))
    | Error (Frame.Too_large _ as e) | Error (Frame.Malformed _ as e) ->
      (* The length prefix was consumed without its payload: the stream
         is desynchronized beyond repair — report and hang up. *)
      Obs.incr proto_errors;
      ignore
        (respond t fd
           (Frame.One (Error (Errors.Invalid (Frame.error_to_string e)))))
    | exception Unix.Unix_error _ -> Obs.incr proto_errors
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown_quiet fd;
      close_quiet fd;
      Mutex.protect t.state (fun () ->
          t.conns <- List.filter (fun (i, _) -> i <> id) t.conns))
    loop

(* ------------------------- threads ------------------------- *)

let accept_loop t =
  let rec go () =
    if is_running t then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let id =
          Mutex.protect t.state (fun () ->
              let id = t.next_id in
              t.next_id <- id + 1;
              t.conns <- (id, fd) :: t.conns;
              id)
        in
        ignore (Thread.create (fun () -> handle_conn t id fd) ());
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ ->
        (* Listener closed: shutdown in progress. *)
        ()
  in
  go ()

let saver_loop t =
  (* Short ticks instead of one long sleep so stop is prompt. *)
  let tick = 0.05 in
  let rec go elapsed =
    if is_running t then begin
      Thread.delay tick;
      let elapsed = elapsed +. tick in
      if elapsed >= t.cfg.save_every_s then begin
        do_save t;
        go 0.0
      end
      else go elapsed
    end
  in
  go 0.0

(* ------------------------- scrape endpoints ------------------------- *)

let healthz_body t =
  let conns = Mutex.protect t.state (fun () -> List.length t.conns) in
  Printf.sprintf
    "{\"status\":\"ok\",\"uptime_s\":%.1f,\"connections_active\":%d,\
     \"port\":%d,\"slow_traces\":%d}"
    (Unix.gettimeofday () -. t.started_at)
    conns t.bound_port
    (Mutex.protect t.state (fun () -> List.length t.slow_traces))

let tracez_body t =
  let entries = Mutex.protect t.state (fun () -> t.slow_traces) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "slow requests (threshold %.1f ms, %d kept)\n\n"
       t.cfg.slow_ms (List.length entries));
  if entries = [] then Buffer.add_string buf "(none recorded)\n"
  else
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "[%.3f] %s user=%s %.3f ms trace=%s\n%s\n" e.st_time
             e.st_verb e.st_user e.st_ms e.st_trace_id e.st_tree))
      entries;
  Buffer.contents buf

(* The sidecar's route table.  Everything it serves is read-only
   telemetry rendered at request time; it never touches the store, so a
   scrape cannot contend with the binary protocol path. *)
let http_handler t path =
  match path with
  | "/metrics" -> Some (Http.text (Obs.dump_prometheus ()))
  | "/healthz" -> Some (Http.json (healthz_body t))
  | "/tracez" -> Some (Http.text (tracez_body t))
  | "/trace.json" -> Some (Http.json (Obs.dump_chrome_trace ()))
  | "/" ->
    Some
      (Http.text
         "forkbase metrics sidecar\n\
          /metrics    Prometheus exposition\n\
          /healthz    liveness + uptime JSON\n\
          /tracez     recent slow-request traces\n\
          /trace.json Chrome trace_event dump of the span ring\n")
  | _ -> None

let slow_trace_count t =
  Mutex.protect t.state (fun () -> List.length t.slow_traces)

(* ------------------------- lifecycle ------------------------- *)

let port t = t.bound_port

let metrics_port t = Option.map Http.port t.metrics_http

let start ?(config = default_config) ?save fb =
  match Frame.resolve_host config.host with
  | Error e -> Error e
  | Ok addr -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, config.port));
         Unix.listen fd config.backlog
       with e ->
         close_quiet fd;
         raise e);
      fd
    with
    | fd ->
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      (* A peer that vanished mid-write must surface as EPIPE on the
         worker thread, not kill the whole daemon. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let t =
        { cfg = config; fb; save; listen_fd = fd; bound_port;
          started_at = Unix.gettimeofday ();
          locks = Rwlock.Striped.create ~stripes:(max 1 config.stripes) ();
          state = Mutex.create ();
          running = true; conns = []; next_id = 0;
          accept_thread = None; saver_thread = None;
          metrics_http = None; slow_traces = [] }
      in
      Obs.gauge "fb.net.connections_active" (fun () ->
          float_of_int (Mutex.protect t.state (fun () -> List.length t.conns)));
      (match config.metrics_port with
       | None -> ()
       | Some mport -> (
         match Http.start ~host:config.host ~port:mport (http_handler t) with
         | Ok http -> t.metrics_http <- Some http
         | Error e ->
           (* A node that cannot serve its binary port must not start;
              one that cannot serve telemetry should — log and go on. *)
           Obs.log_event ~fields:[ ("error", e) ] Obs.Error
             "metrics sidecar failed to start"));
      t.accept_thread <- Some (Thread.create accept_loop t);
      if config.save_every_s > 0.0 && save <> None then
        t.saver_thread <- Some (Thread.create saver_loop t);
      Obs.log_event
        ~fields:
          [ ("host", config.host); ("port", string_of_int bound_port);
            ("metrics_port",
             match metrics_port t with
             | Some p -> string_of_int p
             | None -> "off") ]
        Obs.Info "server started";
      Ok t
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "listen %s:%d: %s" config.host config.port
           (Unix.error_message err)))

let stop t =
  let was_running =
    Mutex.protect t.state (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (* Wake the accept loop, then kick every live connection: their
       blocking reads see EOF and the threads unwind through their
       [finally] (closing fds and deregistering themselves). *)
    shutdown_quiet t.listen_fd;
    close_quiet t.listen_fd;
    List.iter
      (fun (_, fd) -> shutdown_quiet fd)
      (Mutex.protect t.state (fun () -> t.conns));
    let deadline = Unix.gettimeofday () +. 5.0 in
    while
      Mutex.protect t.state (fun () -> t.conns <> [])
      && Unix.gettimeofday () < deadline
    do
      Thread.delay 0.01
    done;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.saver_thread with Some th -> Thread.join th | None -> ());
    (match t.metrics_http with
     | Some http ->
       Http.stop http;
       t.metrics_http <- None
     | None -> ());
    (* Final save so SIGTERM leaves the branch table current on disk. *)
    do_save t;
    Obs.log_event
      ~fields:[ ("port", string_of_int t.bound_port) ]
      Obs.Info "server stopped"
  end

let run t =
  let stop_requested = Atomic.make false in
  let handler _ = Atomic.set stop_requested true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () ->
      while (not (Atomic.get stop_requested)) && is_running t do
        Thread.delay 0.1
      done;
      stop t)
