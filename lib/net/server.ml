module Service = Fb_core.Service
module Errors = Fb_core.Errors
module Obs = Fb_obs.Obs

type config = {
  host : string;
  port : int;
  backlog : int;
  max_frame : int;
  read_timeout_s : float;
  save_every_s : float;
  default_user : string;
}

let default_config =
  { host = "127.0.0.1";
    port = 7447;
    backlog = 64;
    max_frame = Frame.default_max_frame;
    read_timeout_s = 30.0;
    save_every_s = 5.0;
    default_user = "anonymous" }

type t = {
  cfg : config;
  fb : Fb_core.Forkbase.t;
  save : (unit -> unit) option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  fb_lock : Mutex.t;  (* the coarse instance lock: dispatch and save *)
  state : Mutex.t;    (* guards the mutable fields below *)
  mutable running : bool;
  mutable conns : (int * Unix.file_descr) list;
  mutable next_id : int;
  mutable accept_thread : Thread.t option;
  mutable saver_thread : Thread.t option;
}

(* ------------------------- metrics ------------------------- *)

let conns_total = Obs.counter "fb.net.connections"
let frames_total = Obs.counter "fb.net.frames"
let proto_errors = Obs.counter "fb.net.errors"
let request_errors = Obs.counter "fb.net.request_errors"
let save_errors = Obs.counter "fb.net.save_errors"

(* Histograms are created per verb name, so the set must be closed — a
   peer sending garbage verbs must not grow the registry unboundedly. *)
let verb_hists =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun v ->
      let metric = String.map (fun c -> if c = '-' then '_' else c) v in
      Hashtbl.replace tbl v
        (Obs.histogram (Printf.sprintf "fb.net.%s_seconds" metric)))
    [ "put"; "put-csv"; "get"; "get-at"; "head"; "latest"; "list"; "log";
      "branch"; "diff"; "merge"; "verify"; "stat"; "metrics";
      "metrics-json"; "fsck"; "scrub"; "get-json"; "diff-json"; "log-json";
      "stat-json"; "latest-json"; "prove" ];
  tbl

let other_hist = Obs.histogram "fb.net.other_seconds"

let verb_hist verb =
  match Hashtbl.find_opt verb_hists verb with
  | Some h -> h
  | None -> other_hist

(* ------------------------- helpers ------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let is_running t = Mutex.protect t.state (fun () -> t.running)

let do_save t =
  match t.save with
  | None -> ()
  | Some save ->
    Mutex.protect t.fb_lock (fun () ->
        try save () with _ -> Obs.incr save_errors)

(* ------------------------- connection ------------------------- *)

(* Best-effort error/result write; [false] means the peer is gone and the
   connection loop should end. *)
let respond fd ~ok payload =
  match Frame.write_frame fd (Frame.encode_response ~ok payload) with
  | () -> true
  | exception Unix.Unix_error _ -> false

let serve_request t fd payload =
  Obs.incr frames_total;
  match Frame.decode_request payload with
  | Error e ->
    Obs.incr proto_errors;
    (* Frame boundaries are intact, only this payload was bad: answer and
       keep the connection. *)
    respond fd ~ok:false ("bad request: " ^ e)
  | Ok (user, tokens) ->
    let user = if user = "" then t.cfg.default_user else user in
    let verb =
      match tokens with v :: _ -> String.lowercase_ascii v | [] -> ""
    in
    let result =
      Obs.time (verb_hist verb) (fun () ->
          Mutex.protect t.fb_lock (fun () -> Service.dispatch ~user t.fb tokens))
    in
    (match result with
    | Ok body -> respond fd ~ok:true body
    | Error e ->
      Obs.incr request_errors;
      respond fd ~ok:false (Errors.to_string e))

let handle_conn t id fd =
  Obs.incr conns_total;
  let timeout_s =
    if t.cfg.read_timeout_s > 0.0 then Some t.cfg.read_timeout_s else None
  in
  let rec loop () =
    match Frame.read_frame ~max_frame:t.cfg.max_frame ?timeout_s fd with
    | Ok payload -> if serve_request t fd payload then loop ()
    | Error Frame.Eof -> ()
    | Error Frame.Timeout ->
      Obs.incr proto_errors;
      ignore (respond fd ~ok:false "read timeout: closing connection")
    | Error (Frame.Too_large _ as e) | Error (Frame.Malformed _ as e) ->
      (* The length prefix was consumed without its payload: the stream
         is desynchronized beyond repair — report and hang up. *)
      Obs.incr proto_errors;
      ignore (respond fd ~ok:false (Frame.error_to_string e))
    | exception Unix.Unix_error _ -> Obs.incr proto_errors
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown_quiet fd;
      close_quiet fd;
      Mutex.protect t.state (fun () ->
          t.conns <- List.filter (fun (i, _) -> i <> id) t.conns))
    loop

(* ------------------------- threads ------------------------- *)

let accept_loop t =
  let rec go () =
    if is_running t then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let id =
          Mutex.protect t.state (fun () ->
              let id = t.next_id in
              t.next_id <- id + 1;
              t.conns <- (id, fd) :: t.conns;
              id)
        in
        ignore (Thread.create (fun () -> handle_conn t id fd) ());
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ ->
        (* Listener closed: shutdown in progress. *)
        ()
  in
  go ()

let saver_loop t =
  (* Short ticks instead of one long sleep so stop is prompt. *)
  let tick = 0.05 in
  let rec go elapsed =
    if is_running t then begin
      Thread.delay tick;
      let elapsed = elapsed +. tick in
      if elapsed >= t.cfg.save_every_s then begin
        do_save t;
        go 0.0
      end
      else go elapsed
    end
  in
  go 0.0

(* ------------------------- lifecycle ------------------------- *)

let port t = t.bound_port

let start ?(config = default_config) ?save fb =
  match Frame.resolve_host config.host with
  | Error _ as e -> e
  | Ok addr -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, config.port));
         Unix.listen fd config.backlog
       with e ->
         close_quiet fd;
         raise e);
      fd
    with
    | fd ->
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      (* A peer that vanished mid-write must surface as EPIPE on the
         worker thread, not kill the whole daemon. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let t =
        { cfg = config; fb; save; listen_fd = fd; bound_port;
          fb_lock = Mutex.create (); state = Mutex.create ();
          running = true; conns = []; next_id = 0;
          accept_thread = None; saver_thread = None }
      in
      Obs.gauge "fb.net.connections_active" (fun () ->
          float_of_int (Mutex.protect t.state (fun () -> List.length t.conns)));
      t.accept_thread <- Some (Thread.create accept_loop t);
      if config.save_every_s > 0.0 && save <> None then
        t.saver_thread <- Some (Thread.create saver_loop t);
      Ok t
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "listen %s:%d: %s" config.host config.port
           (Unix.error_message err)))

let stop t =
  let was_running =
    Mutex.protect t.state (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (* Wake the accept loop, then kick every live connection: their
       blocking reads see EOF and the threads unwind through their
       [finally] (closing fds and deregistering themselves). *)
    shutdown_quiet t.listen_fd;
    close_quiet t.listen_fd;
    List.iter
      (fun (_, fd) -> shutdown_quiet fd)
      (Mutex.protect t.state (fun () -> t.conns));
    let deadline = Unix.gettimeofday () +. 5.0 in
    while
      Mutex.protect t.state (fun () -> t.conns <> [])
      && Unix.gettimeofday () < deadline
    do
      Thread.delay 0.01
    done;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.saver_thread with Some th -> Thread.join th | None -> ());
    (* Final save so SIGTERM leaves the branch table current on disk. *)
    do_save t
  end

let run t =
  let stop_requested = Atomic.make false in
  let handler _ = Atomic.set stop_requested true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () ->
      while (not (Atomic.get stop_requested)) && is_running t do
        Thread.delay 0.1
      done;
      stop t)
