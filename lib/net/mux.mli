(** Pipelined, multiplexing TCP client for the ForkBase service.

    Where {!Client} is strict request/response (one outstanding request,
    blocking round trips), a [Mux.t] keeps {e many} requests in flight
    on one connection: every outgoing frame is tagged with a sequence id
    ({!Frame}, flag [0x40]), a dedicated reader thread demultiplexes the
    (possibly out-of-order) tagged replies back to their waiters, and
    server-initiated [Event] frames are routed to SUBSCRIBE callbacks.

    Two usage styles:
    {ul
    {- {!request}/{!batch} — blocking calls, same shape as {!Client};
       many threads may call them concurrently over one connection and
       their requests pipeline automatically.}
    {- {!send} + {!await} — split issue from completion, for a single
       thread keeping a deep pipeline (the bench driver's depth-N
       sweep): issue N tickets, then await them.}}

    Failure model: transport failures and protocol violations (a torn
    frame, a reply carrying an unknown sequence id, an untagged reply)
    {e poison} the connection — every outstanding and future call fails
    with the same [Transport] error, and callbacks stop.  Typed server
    errors ([Remote]) do not.

    Callbacks run on the reader thread: keep them quick, and never call
    back into the same [Mux.t] from one (an {!unsubscribe} from inside a
    callback would deadlock — the reader cannot read its own reply).
    Subscription callbacks are installed by the reader {e before} it
    reads the frame after the subscribe reply, so a push racing the
    subscription's acknowledgement cannot be dropped. *)

type error = Client.error =
  | Remote of Fb_core.Errors.t
  | Transport of string

type t

val connect :
  ?host:string ->
  ?port:int ->
  ?user:string ->
  ?max_frame:int ->
  ?timeout_s:float ->
  unit ->
  (t, error) result
(** Same defaults and dial policy as {!Client.connect}
    ({!Client.dial}).  [timeout_s] bounds the dial and every send;
    receives block until the reply arrives or the connection dies. *)

val is_open : t -> bool

val close : t -> unit
(** Idempotent.  Outstanding waiters fail with [Transport "connection
    closed"]. *)

(** {1 Blocking calls} *)

val request : ?user:string -> t -> string list -> (string, error) result
(** One verb, pipelined under the hood; blocks for this request's reply
    only.  Stamps the calling thread's trace context like
    {!Client.request}. *)

val batch :
  ?user:string -> t -> string list list -> (Frame.reply list, error) result

(** {1 Split issue/completion} *)

type ticket

val send : ?user:string -> ?install:(Frame.trace option -> Frame.event -> unit) ->
  t -> Frame.request -> (ticket, error) result
(** Issue one tagged request without waiting.  [install] is internal
    plumbing for {!subscribe}; ordinary senders omit it. *)

val await : t -> ticket -> (Frame.response, error) result
(** Block until the reply for [ticket] arrives.  Each ticket may be
    awaited once. *)

(** {1 Subscriptions} *)

val subscribe :
  ?user:string -> ?key:string -> ?branch:string ->
  t -> (Frame.trace option -> Frame.event -> unit) ->
  (int, error) result
(** Register a server-side branch-head watch ([key]/[branch] default to
    ["*"] — everything) and return its subscription id.  The callback
    fires on the reader thread for every matching head movement, with
    the writer's trace header when the mutating request was traced.
    Requires an event-mode server ({!Server}); a threaded server answers
    with a typed [Remote] error. *)

val unsubscribe : ?user:string -> t -> int -> (unit, error) result
(** Deregister: local deliveries stop immediately, the server-side
    registration is then torn down. *)
