(* Readiness notification for the event-loop server.

   The interest set is persistent: callers register an fd once with
   [modify] and update or drop it when their interest changes, instead
   of rebuilding the whole set before every wait.  That shape is what
   lets the Linux backend use epoll(7), whose wait cost is O(ready fds);
   poll(2) — the portable fallback, also the only option on non-Linux
   hosts — walks every registered fd per wait and would make tail
   latency grow linearly with idle connections.

   Both stubs release the OCaml runtime lock for the duration of the
   wait so worker threads keep executing dispatches while the loop
   sleeps.  One loop thread owns an instance; it is not thread-safe. *)

external fd_int : Unix.file_descr -> int = "%identity"
(* On Unix a file_descr is the raw fd integer; this is the same identity
   the stdlib's own unixsupport uses. *)

external poll_raw :
  int array -> int array -> int array -> int -> int -> int = "fb_net_poll"

external epoll_create_raw : unit -> int = "fb_net_epoll_create"
external epoll_ctl_raw : int -> int -> int -> int -> unit = "fb_net_epoll_ctl"

external epoll_wait_raw :
  int -> int array -> int array -> int -> int -> int = "fb_net_epoll_wait"

external int_fd : int -> Unix.file_descr = "%identity"

let pollin = 1
let pollout = 2
let pollerr = 4

(* Ready entries of the last [wait] land in [ready_fds]/[ready_evs]
   regardless of backend.  Their size caps one wait's batch; with
   level-triggered semantics anything beyond the cap simply surfaces on
   the next wait. *)
let max_ready = 1024

type backend = Epoll of int | Poll

type t = {
  backend : backend;
  registered : (int, int) Hashtbl.t;  (* fd -> current interest mask *)
  ready_fds : int array;
  ready_evs : int array;
  (* poll-backend scratch, rebuilt from [registered] per wait *)
  mutable p_fds : int array;
  mutable p_events : int array;
  mutable p_revents : int array;
}

let create () =
  let backend =
    match epoll_create_raw () with
    | -1 -> Poll
    | epfd -> Epoll epfd
  in
  { backend;
    registered = Hashtbl.create 64;
    ready_fds = Array.make max_ready (-1);
    ready_evs = Array.make max_ready 0;
    p_fds = Array.make 64 (-1);
    p_events = Array.make 64 0;
    p_revents = Array.make 64 0 }

let backend_name t =
  match t.backend with Epoll _ -> "epoll" | Poll -> "poll"

(* Set [fd]'s interest mask; 0 drops it from the set.  Redundant calls
   (same mask, or dropping an unregistered fd) are free no-ops, so
   callers can re-sync interest after any state change without keeping
   score. *)
let modify t fd mask =
  let fd = fd_int fd in
  let current = Hashtbl.find_opt t.registered fd in
  match current, mask with
  | None, 0 -> ()
  | Some m, _ when m = mask -> ()
  | _ ->
    (match t.backend with
     | Poll -> ()
     | Epoll epfd ->
       let op =
         match current, mask with
         | None, _ -> 0 (* add *)
         | Some _, 0 -> 2 (* delete *)
         | Some _, _ -> 1 (* modify *)
       in
       epoll_ctl_raw epfd op fd mask);
    if mask = 0 then Hashtbl.remove t.registered fd
    else Hashtbl.replace t.registered fd mask

let remove t fd = modify t fd 0

let grow_poll t n =
  let cap = max n (Array.length t.p_fds * 2) in
  t.p_fds <- Array.make cap (-1);
  t.p_events <- Array.make cap 0;
  t.p_revents <- Array.make cap 0

let poll_wait t ~timeout_ms =
  let n = Hashtbl.length t.registered in
  if n > Array.length t.p_fds then grow_poll t n;
  let i = ref 0 in
  Hashtbl.iter
    (fun fd mask ->
      t.p_fds.(!i) <- fd;
      t.p_events.(!i) <- mask;
      t.p_revents.(!i) <- 0;
      incr i)
    t.registered;
  match poll_raw t.p_fds t.p_events t.p_revents n timeout_ms with
  (* EINTR: surface as "nothing ready" rather than retrying with the
     full timeout — under a signal storm the retry would restart the
     clock every time and the caller's lifecycle check (e.g.
     [Server.stop]'s is_running flag) could be starved indefinitely. *)
  | -1 -> 0
  | _ ->
    (* Compact ready entries to the front of the output arrays, bounded
       like the epoll path. *)
    let out = ref 0 in
    for j = 0 to n - 1 do
      if t.p_revents.(j) <> 0 && !out < max_ready then begin
        t.ready_fds.(!out) <- t.p_fds.(j);
        t.ready_evs.(!out) <- t.p_revents.(j);
        incr out
      end
    done;
    !out

let epoll_wait epfd t ~timeout_ms =
  match epoll_wait_raw epfd t.ready_fds t.ready_evs max_ready timeout_ms with
  | -1 -> 0 (* EINTR: same treatment as the poll path above *)
  | ready -> ready

(* Block until an fd is ready or [timeout_ms] elapses (-1 = forever);
   returns the number of ready entries, readable via [ready_fd] /
   [ready_events]. *)
let wait t ~timeout_ms =
  match t.backend with
  | Epoll epfd -> epoll_wait epfd t ~timeout_ms
  | Poll -> poll_wait t ~timeout_ms

let ready_fd t i = t.ready_fds.(i)
let ready_events t i = t.ready_evs.(i)

let close t =
  match t.backend with
  | Poll -> ()
  | Epoll epfd -> ( try Unix.close (int_fd epfd) with Unix.Unix_error _ -> ())

let readable re = re land pollin <> 0
let writable re = re land pollout <> 0
let errored re = re land pollerr <> 0
