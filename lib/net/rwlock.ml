(* Write-preferring reader-writer lock, and a striped variant keyed by
   string for per-key exclusion.  Built on stdlib Mutex/Condition only.

   Acquisition paths record an Obs "rwlock.wait" span (plus the
   fb.rwlock.wait_seconds histogram), so a traced request shows lock
   wait as a distinct child span — the difference between "the store is
   slow" and "the request queued behind a writer". *)

module Obs = Fb_obs.Obs

let wait_hist = Obs.histogram "fb.rwlock.wait_seconds"

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer_active : bool;
  mutable waiting_writers : int;
}

let create () =
  { m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer_active = false;
    waiting_writers = 0 }

(* Write preference: a newly arriving reader yields to any waiting writer,
   so a steady read load cannot starve mutations.  When the last writer
   leaves it broadcasts the whole reader cohort in one go — readers
   admitted between writers proceed together, which bounds how long any
   reader waits to the writer backlog present at its arrival. *)
let acquire_read t =
  Mutex.lock t.m;
  while t.writer_active || t.waiting_writers > 0 do
    Condition.wait t.can_read t.m
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.m

let release_read t =
  Mutex.lock t.m;
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let acquire_write t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer_active || t.active_readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer_active <- true;
  Mutex.unlock t.m

let release_write t =
  Mutex.lock t.m;
  t.writer_active <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.m

let mode_name = function `Read -> "read" | `Write -> "write"

let acquire_spanned ?(scope = "stripe") t mode =
  Obs.with_span
    ~attrs:[ ("mode", mode_name mode); ("scope", scope) ]
    "rwlock.wait"
    (fun () ->
      Obs.time wait_hist (fun () ->
          match mode with `Read -> acquire_read t | `Write -> acquire_write t))

let release_mode t mode =
  match mode with `Read -> release_read t | `Write -> release_write t

let with_mode t mode f =
  acquire_spanned t mode;
  Fun.protect ~finally:(fun () -> release_mode t mode) f

let with_read t f = with_mode t `Read f
let with_write t f = with_mode t `Write f

module Striped = struct
  type rw = t

  type t = rw array

  let default_stripes = 16

  let create ?(stripes = default_stripes) () =
    if stripes < 1 then invalid_arg "Rwlock.Striped.create";
    Array.init stripes (fun _ -> create ())

  let stripe_count t = Array.length t

  (* FNV-1a over the key: cheap, stable across runs (unlike
     [Hashtbl.hash] no seeding concerns), uniform enough for a handful
     of stripes. *)
  let stripe_index t key =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x01000193)
      key;
    (!h land max_int) mod Array.length t

  let with_key t ~mode key f = with_mode t.(stripe_index t key) mode f

  (* Global sections take every stripe, always in index order so two
     concurrent global writers (or a global writer vs. a key writer)
     cannot deadlock.  One wait span covers the whole sweep — the wait
     a global op actually experiences is the sum over stripes. *)
  let with_global t ~mode f =
    let n = Array.length t in
    let acquired = ref 0 in
    let acquire_all () =
      Obs.with_span
        ~attrs:[ ("mode", mode_name mode); ("scope", "global") ]
        "rwlock.wait"
        (fun () ->
          Obs.time wait_hist (fun () ->
              while !acquired < n do
                (match mode with
                 | `Read -> acquire_read t.(!acquired)
                 | `Write -> acquire_write t.(!acquired));
                incr acquired
              done))
    in
    let release_all () =
      for i = !acquired - 1 downto 0 do
        release_mode t.(i) mode
      done
    in
    (match acquire_all () with
     | () -> ()
     | exception e ->
       release_all ();
       raise e);
    Fun.protect ~finally:release_all f
end
