module Errors = Fb_core.Errors
module Obs = Fb_obs.Obs

type error =
  | Remote of Errors.t
  | Transport of string

let error_to_string = function
  | Remote e -> Errors.to_string e
  | Transport msg -> "transport: " ^ msg

type t = {
  fd : Unix.file_descr;
  user : string;
  max_frame : int;
  timeout_s : float option;
  mutable closed : bool;
}

exception Connect_failed of string

let dial ?(host = "127.0.0.1") ?(port = 7447) ?(timeout_s = 30.0) () =
  match Frame.resolve_host host with
  | Error e -> Error (Transport e)
  | Ok addr ->
    let deadline = Frame.deadline_of_timeout (Some timeout_s) in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (* Everything after socket creation funnels through this handler:
       whatever fails — connect, the deadline, setsockopt — the fd is
       closed exactly once before the error is returned. *)
    (match
       (match deadline with
        | None -> Unix.connect fd (Unix.ADDR_INET (addr, port))
        | Some _ ->
          (* Deadline-bounded connect: non-blocking + wait_writable, the
             same select helper every other timed IO path uses. *)
          Unix.set_nonblock fd;
          (try Unix.connect fd (Unix.ADDR_INET (addr, port))
           with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
             match Frame.wait_writable fd deadline with
             | Error e ->
               raise (Connect_failed ("connect " ^ Frame.error_to_string e))
             | Ok () -> (
               match Unix.getsockopt_error fd with
               | None -> ()
               | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
          Unix.clear_nonblock fd);
       Unix.setsockopt fd Unix.TCP_NODELAY true
     with
    | () -> Ok fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match e with
       | Unix.Unix_error (err, _, _) ->
         Error
           (Transport
              (Printf.sprintf "connect %s:%d: %s" host port
                 (Unix.error_message err)))
       | Connect_failed msg ->
         Error (Transport (Printf.sprintf "%s (%s:%d)" msg host port))
       | e -> raise e))

let connect ?host ?port ?(user = "anonymous")
    ?(max_frame = Frame.default_max_frame) ?(timeout_s = 30.0) () =
  match dial ?host ?port ~timeout_s () with
  | Error _ as e -> e
  | Ok fd ->
    Ok
      { fd; user; max_frame;
        timeout_s = (if timeout_s > 0.0 then Some timeout_s else None);
        closed = false }

let is_open t = not t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

(* The trace header stamped on outgoing frames: the calling thread's
   innermost open span, if tracing is on.  Server-side spans of this
   request will join that trace as children of the client span. *)
let current_trace () =
  Option.map
    (fun (c : Obs.context) ->
      { Frame.trace_id = c.trace_id; parent_span = c.span_id })
    (Obs.current_context ())

(* One framed round trip.  Transport failures poison the connection
   (the stream may be desynchronized); typed server-side errors do not. *)
let roundtrip ?user t req =
  if t.closed then Error (Transport "connection closed")
  else
    let user = Option.value user ~default:t.user in
    match
      match
        Frame.write_frame ?timeout_s:t.timeout_s t.fd
          (Frame.encode_request ~user ?trace:(current_trace ()) req)
      with
      | Ok () ->
        Frame.read_frame ~max_frame:t.max_frame ?timeout_s:t.timeout_s t.fd
      | Error _ as e -> e
    with
    | Ok payload -> (
      match Frame.decode_response payload with
      | Ok (_, _, resp) -> Ok resp
      | Error e ->
        close t;
        Error (Transport ("bad response frame: " ^ e)))
    | Error err ->
      close t;
      Error (Transport (Frame.error_to_string err))
    | exception Unix.Unix_error (err, _, _) ->
      close t;
      Error (Transport (Unix.error_message err))

let verb_of = function
  | v :: _ -> String.lowercase_ascii v
  | [] -> "(empty)"

(* request/batch open a client-side span around the round trip: the span
   mints (or continues) the trace id, the header stamped by [roundtrip]
   carries it, and the wall time it records is the latency the caller
   saw — wire + server, attributable by diffing against the server span
   of the same trace. *)
let request ?user t tokens =
  Obs.with_span
    ~attrs:[ ("verb", verb_of tokens) ]
    "net.client.request"
    (fun () ->
      match roundtrip ?user t (Frame.Single tokens) with
      | Error _ as e -> e
      | Ok (Frame.One (Ok payload)) -> Ok payload
      | Ok (Frame.One (Error e)) -> Error (Remote e)
      | Ok (Frame.Many _) ->
        close t;
        Error (Transport "batch response to a single request")
      | Ok (Frame.Event _) ->
        (* The blocking client never subscribes; an event frame means the
           stream is not what we think it is. *)
        close t;
        Error (Transport "unexpected event frame"))

let batch_roundtrip ?user t reqs =
  match roundtrip ?user t (Frame.Batch reqs) with
  | Error _ as e -> e
  | Ok (Frame.Many replies) when List.length replies = List.length reqs ->
    Ok replies
  | Ok (Frame.Many replies) ->
    close t;
    Error
      (Transport
         (Printf.sprintf "batch answered %d replies for %d sub-requests"
            (List.length replies) (List.length reqs)))
  | Ok (Frame.One _) ->
    close t;
    Error (Transport "single response to a batch request")
  | Ok (Frame.Event _) ->
    close t;
    Error (Transport "unexpected event frame")

let batch ?user t reqs =
  Obs.with_span
    ~attrs:[ ("n", string_of_int (List.length reqs)) ]
    "net.client.batch"
    (fun () -> batch_roundtrip ?user t reqs)

let request_line ?user t line =
  match Fb_core.Service.tokenize line with
  | Error e -> Error (Remote (Errors.Invalid e))
  | Ok tokens -> request ?user t tokens
