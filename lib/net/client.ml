type t = {
  fd : Unix.file_descr;
  user : string;
  max_frame : int;
  timeout_s : float option;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ?(port = 7447) ?(user = "anonymous")
    ?(max_frame = Frame.default_max_frame) ?(timeout_s = 30.0) () =
  match Frame.resolve_host host with
  | Error _ as e -> e
  | Ok addr -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (addr, port));
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd ->
      let timeout_s = if timeout_s > 0.0 then Some timeout_s else None in
      Ok { fd; user; max_frame; timeout_s; closed = false }
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "connect %s:%d: %s" host port
           (Unix.error_message err)))

let is_open t = not t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let request ?user t tokens =
  if t.closed then Error "connection closed"
  else
    let user = Option.value user ~default:t.user in
    match
      Frame.write_frame t.fd (Frame.encode_request ~user tokens);
      Frame.read_frame ~max_frame:t.max_frame ?timeout_s:t.timeout_s t.fd
    with
    | Ok payload -> (
      match Frame.decode_response payload with
      | Ok (true, body) -> Ok body
      | Ok (false, msg) -> Error msg
      | Error e ->
        close t;
        Error ("bad response frame: " ^ e))
    | Error err ->
      close t;
      Error (Frame.error_to_string err)
    | exception Unix.Unix_error (err, _, _) ->
      close t;
      Error (Unix.error_message err)

let request_line ?user t line =
  match Fb_core.Service.tokenize line with
  | Error e -> Error ("invalid request: " ^ e)
  | Ok tokens -> request ?user t tokens
