(** Networked cluster composition — {!Fb_chunk.Cluster_store} whose
    members are live [forkbase serve] nodes reached through
    {!Remote.chunk_store}, plus the ["cluster"] store-provider
    registration that makes [Persistent.open_ ~backend:"cluster"] and
    [forkbase serve --backend cluster] work end-to-end.

    Topology is a node list ([host:port] pairs), given either directly
    (CLI [--nodes host:port,…], provider param [nodes=…]) or from a
    [CLUSTER] file under the instance root (one node per line; written
    by [forkbase cluster start]).  Each member dials lazily: a node that
    is down at open time does not fail the cluster — its first use
    raises {!Fb_chunk.Store.Transient} and the routing tier fails over;
    the member keeps re-dialing on subsequent use, so a restarted node
    rejoins without any administrative action. *)

type node = { host : string; port : int }

val parse_nodes : string -> (node list, string) result
(** ["host:port,host:port,…"] (a bare port means [127.0.0.1]).  Order is
    significant: it fixes member identity on the hash ring. *)

val render_node : node -> string

(** {1 CLUSTER file}

    Topology-on-disk for provider [detect]/[auto] and the [forkbase
    cluster] tooling:
    {v
    # one node per line; trailing fields (pid=…) are tooling metadata
    replicas=2
    127.0.0.1:7461 pid=12345
    127.0.0.1:7462 pid=12346
    v} *)

val cluster_file : string -> string
(** [<root>/CLUSTER]. *)

type topology = {
  nodes : (node * int option) list;  (** node, recorded pid if any *)
  t_replicas : int option;
  t_virtual_nodes : int option;
}

val read_topology : string -> (topology, string) result
(** Parse a CLUSTER file ([Error] on unreadable/unparsable content). *)

val write_topology : string -> topology -> (unit, string) result

(** {1 Live cluster handle} *)

type t

val connect :
  ?name:string ->
  ?replicas:int ->
  ?virtual_nodes:int ->
  ?user:string ->
  ?timeout_s:float ->
  nodes:node list ->
  unit ->
  (t, Fb_core.Errors.t) result
(** Build the routing store over the given nodes.  Nothing is dialed
    yet ([Error] only on an empty node list / bad arguments); members
    connect on first use and re-dial after failures.  Defaults mirror
    {!Fb_chunk.Cluster_store.create}. *)

val store : t -> Fb_chunk.Store.t
val cluster : t -> Fb_chunk.Cluster_store.t
(** The underlying routing engine (owners, stats, set_down, rebalance). *)

val nodes : t -> node list

val probe : t -> (node * bool) list
(** One liveness round: try a cheap request against every member and
    mark it up/down in the routing tier accordingly.  Returns what was
    found.  [forkbase cluster status] and the bench harness call this;
    steady-state traffic relies on per-op failover instead. *)

val close : t -> unit
(** Close every dialed member connection and retire the cluster's
    gauges. *)

(** {1 Store-provider registration} *)

type Fb_chunk.Store_provider.handle += Cluster_handle of t

val register_provider : unit -> unit
(** Register the ["cluster"] provider: [detect] claims roots holding a
    [CLUSTER] file; [open_] reads topology from [params] ([nodes],
    [replicas], [virtual_nodes], [user]) with the [CLUSTER] file as
    fallback for anything the params omit.  Explicit call (not module
    init) so linking [fb_net] is what brings the provider into the
    registry — the CLI and tests call this at startup. *)
