module Errors = Fb_core.Errors
module Forkbase = Fb_core.Forkbase

type uid = Forkbase.uid

type t = { c : Client.t }

(* The one place transport failures become typed: a dead socket is a
   transient condition (retry against the same or another server), not a
   storage-semantics error. *)
let of_client_error = function
  | Client.Remote e -> e
  | Client.Transport msg -> Errors.Transient ("network: " ^ msg)

let lift = function
  | Ok _ as ok -> ok
  | Error e -> Error (of_client_error e)

let connect ?host ?port ?user ?max_frame ?timeout_s () =
  match Client.connect ?host ?port ?user ?max_frame ?timeout_s () with
  | Ok c -> Ok { c }
  | Error e -> Error (of_client_error e)

let close t = Client.close t.c
let is_open t = Client.is_open t.c

let raw ?user t tokens = lift (Client.request ?user t.c tokens)
let raw_line ?user t line = lift (Client.request_line ?user t.c line)

let uid_of payload = Forkbase.parse_version payload

let unit_of (_ : string) = Ok ()

let lines_of payload =
  if payload = "" then [] else String.split_on_char '\n' payload

(* "branch uid" per line; the uid rendering never contains a blank, so
   splitting at the last one is unambiguous even for odd branch names. *)
let head_line line =
  match String.rindex_opt line ' ' with
  | None -> Error (Errors.Invalid ("bad head line: " ^ line))
  | Some i ->
    let branch = String.sub line 0 i in
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    Result.map (fun uid -> (branch, uid)) (uid_of v)

let heads_of payload =
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok heads ->
        Result.map (fun h -> h :: heads) (head_line line))
    (Ok []) (lines_of payload)
  |> Result.map List.rev

let op ?user t tokens parse = Result.bind (raw ?user t tokens) parse

(* ------------------------- the Forkbase mirror ------------------------- *)

let default_branch = "master"

let put ?user ?(branch = default_branch) t ~key value =
  op ?user t [ "put"; key; branch; value ] uid_of

let put_csv ?user ?(branch = default_branch) t ~key csv =
  op ?user t [ "put-csv"; key; branch; csv ] uid_of

let get ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "get"; key; branch ]

let get_at ?user t uid =
  raw ?user t [ "get-at"; Forkbase.version_string uid ]

let head ?user ?(branch = default_branch) t ~key =
  op ?user t [ "head"; key; branch ] uid_of

let latest ?user t ~key = op ?user t [ "latest"; key ] heads_of

let list_keys ?user t =
  Result.map lines_of (raw ?user t [ "list" ])

let log ?user ?(branch = default_branch) t ~key =
  Result.map lines_of (raw ?user t [ "log"; key; branch ])

let meta ?user t uid =
  raw ?user t [ "meta"; Forkbase.version_string uid ]

let fork ?user ?(from_branch = default_branch) t ~key ~new_branch =
  op ?user t [ "branch"; key; from_branch; new_branch ] uid_of

let rename_branch ?user t ~key ~from_branch ~to_branch =
  op ?user t [ "rename"; key; from_branch; to_branch ] unit_of

let merge ?user t ~key ~into ~from_branch =
  op ?user t [ "merge"; key; into; from_branch ] uid_of

let diff ?user t ~key ~branch1 ~branch2 =
  raw ?user t [ "diff"; key; branch1; branch2 ]

let verify ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "verify"; key; branch ]

let prove ?user ?(branch = default_branch) t ~key ~entry_key =
  raw ?user t [ "prove"; key; branch; entry_key ]

let stat ?user t = raw ?user t [ "stat" ]
let metrics ?user t = raw ?user t [ "metrics" ]

(* ------------------------- batching ------------------------- *)

type op_req =
  | Put of { key : string; branch : string; value : string }
  | Get of { key : string; branch : string }
  | Head of { key : string; branch : string }

type op_reply = Uid of uid | Value of string

let tokens_of_op = function
  | Put { key; branch; value } -> [ "put"; key; branch; value ]
  | Get { key; branch } -> [ "get"; key; branch ]
  | Head { key; branch } -> [ "head"; key; branch ]

let reply_of_op o (reply : Frame.reply) =
  match o, reply with
  | _, Error e -> Error e
  | (Put _ | Head _), Ok payload -> Result.map (fun u -> Uid u) (uid_of payload)
  | Get _, Ok payload -> Ok (Value payload)

let batch ?user t ops =
  match Client.batch ?user t.c (List.map tokens_of_op ops) with
  | Error e -> Error (of_client_error e)
  | Ok replies -> Ok (List.map2 reply_of_op ops replies)

let batch_raw ?user t reqs = lift (Client.batch ?user t.c reqs)
