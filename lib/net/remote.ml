module Errors = Fb_core.Errors
module Forkbase = Fb_core.Forkbase
module Service = Fb_core.Service
module Obs = Fb_obs.Obs

type uid = Forkbase.uid

(* Dial parameters, kept verbatim for the transparent reconnect. *)
type params = {
  host : string option;
  port : int option;
  user : string option;
  max_frame : int option;
  timeout_s : float option;
}

type t = {
  p : params;
  mu : Mutex.t;  (* guards [mux] swap and [user_closed] *)
  mutable mux : Mux.t;
  mutable user_closed : bool;
}

type subscription = int

(* The one place transport failures become typed: a dead socket is a
   transient condition (retry against the same or another server), not a
   storage-semantics error. *)
let of_client_error = function
  | Mux.Remote e -> e
  | Mux.Transport msg -> Errors.Transient ("network: " ^ msg)

let lift = function
  | Ok _ as ok -> ok
  | Error e -> Error (of_client_error e)

let connect ?host ?port ?user ?max_frame ?timeout_s () =
  match Mux.connect ?host ?port ?user ?max_frame ?timeout_s () with
  | Ok mux ->
    Ok
      { p = { host; port; user; max_frame; timeout_s };
        mu = Mutex.create (); mux; user_closed = false }
  | Error e -> Error (of_client_error e)

let close t =
  let mux =
    Mutex.protect t.mu (fun () ->
        t.user_closed <- true;
        t.mux)
  in
  Mux.close mux

let is_open t =
  Mutex.protect t.mu (fun () -> (not t.user_closed) && Mux.is_open t.mux)

(* One transparent reconnect: when the transport died under us (not by
   an explicit [close]), re-dial with the original parameters and retry
   — but only requests whose classification is [Read].  A mutating verb
   may have been applied before the connection tore; replaying it could
   double-apply, so it surfaces as [Transient] for the caller to decide. *)
let reconnect_for t dead =
  Mutex.protect t.mu (fun () ->
      if t.user_closed then None
      else if t.mux != dead then Some t.mux  (* another caller already did *)
      else begin
        Mux.close dead;
        match
          Mux.connect ?host:t.p.host ?port:t.p.port ?user:t.p.user
            ?max_frame:t.p.max_frame ?timeout_s:t.p.timeout_s ()
        with
        | Ok mux ->
          t.mux <- mux;
          Obs.log_event Obs.Info "remote reconnected";
          Some mux
        | Error _ -> None
      end)

let run ~retryable t f =
  let mux = Mutex.protect t.mu (fun () -> t.mux) in
  match f mux with
  | Ok _ as ok -> ok
  | Error (Mux.Remote _) as e -> e
  | Error (Mux.Transport _) as e ->
    if not retryable then e
    else if Mutex.protect t.mu (fun () -> t.user_closed) then e
    else (
      match reconnect_for t mux with
      | None -> e
      | Some mux -> f mux)

let tokens_retryable tokens =
  match Service.classify tokens with
  | Service.Read, _ -> true
  | Service.Write, _ -> false

let raw ?user t tokens =
  lift
    (run ~retryable:(tokens_retryable tokens) t (fun mux ->
         Mux.request ?user mux tokens))

let raw_line ?user t line =
  match Fb_core.Service.tokenize line with
  | Error e -> Error (Errors.Invalid e)
  | Ok tokens -> raw ?user t tokens

let uid_of payload = Forkbase.parse_version payload

let unit_of (_ : string) = Ok ()

let lines_of payload =
  if payload = "" then [] else String.split_on_char '\n' payload

(* "branch uid" per line; the uid rendering never contains a blank, so
   splitting at the last one is unambiguous even for odd branch names. *)
let head_line line =
  match String.rindex_opt line ' ' with
  | None -> Error (Errors.Invalid ("bad head line: " ^ line))
  | Some i ->
    let branch = String.sub line 0 i in
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    Result.map (fun uid -> (branch, uid)) (uid_of v)

let heads_of payload =
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok heads ->
        Result.map (fun h -> h :: heads) (head_line line))
    (Ok []) (lines_of payload)
  |> Result.map List.rev

let op ?user t tokens parse = Result.bind (raw ?user t tokens) parse

(* ------------------------- the Forkbase mirror ------------------------- *)

let default_branch = "master"

let put ?user ?(branch = default_branch) t ~key value =
  op ?user t [ "put"; key; branch; value ] uid_of

let put_csv ?user ?(branch = default_branch) t ~key csv =
  op ?user t [ "put-csv"; key; branch; csv ] uid_of

let get ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "get"; key; branch ]

let get_at ?user t uid =
  raw ?user t [ "get-at"; Forkbase.version_string uid ]

let head ?user ?(branch = default_branch) t ~key =
  op ?user t [ "head"; key; branch ] uid_of

let latest ?user t ~key = op ?user t [ "latest"; key ] heads_of

let list_keys ?user t =
  Result.map lines_of (raw ?user t [ "list" ])

let log ?user ?(branch = default_branch) t ~key =
  Result.map lines_of (raw ?user t [ "log"; key; branch ])

let meta ?user t uid =
  raw ?user t [ "meta"; Forkbase.version_string uid ]

let fork ?user ?(from_branch = default_branch) t ~key ~new_branch =
  op ?user t [ "branch"; key; from_branch; new_branch ] uid_of

let rename_branch ?user t ~key ~from_branch ~to_branch =
  op ?user t [ "rename"; key; from_branch; to_branch ] unit_of

let merge ?user t ~key ~into ~from_branch =
  op ?user t [ "merge"; key; into; from_branch ] uid_of

let diff ?user t ~key ~branch1 ~branch2 =
  raw ?user t [ "diff"; key; branch1; branch2 ]

let verify ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "verify"; key; branch ]

let prove ?user ?(branch = default_branch) t ~key ~entry_key =
  raw ?user t [ "prove"; key; branch; entry_key ]

let stat ?user t = raw ?user t [ "stat" ]
let metrics ?user t = raw ?user t [ "metrics" ]

(* ------------------------- subscriptions ------------------------- *)

(* Bridge the wire event back into the local watch vocabulary: heads are
   parsed to uids, and the callback runs inside a [net.client.event]
   span joined to the writer's trace when the push carried one — the
   same trace id `forkbase top` / /tracez show for the write itself. *)
let subscribe ?user ?key ?branch t cb =
  let wrapped trace (ev : Frame.event) =
    match Forkbase.parse_version ev.new_head with
    | Error _ -> ()  (* unintelligible push; drop rather than crash *)
    | Ok new_head ->
      let old_head =
        Option.bind ev.old_head (fun s ->
            Result.to_option (Forkbase.parse_version s))
      in
      let ctx =
        Option.map
          (fun (tr : Frame.trace) ->
            { Obs.trace_id = tr.trace_id; span_id = tr.parent_span })
          trace
      in
      Obs.with_span ?ctx
        ~attrs:[ ("key", ev.ev_key); ("branch", ev.ev_branch) ]
        "net.client.event"
        (fun () ->
          cb
            { Forkbase.key = ev.ev_key; branch = ev.ev_branch;
              new_head; old_head })
  in
  let mux = Mutex.protect t.mu (fun () -> t.mux) in
  lift (Mux.subscribe ?user ?key ?branch mux wrapped)

let unsubscribe ?user t sid =
  let mux = Mutex.protect t.mu (fun () -> t.mux) in
  lift (Mux.unsubscribe ?user mux sid)

(* ------------------------- batching ------------------------- *)

type op_req =
  | Put of { key : string; branch : string; value : string }
  | Get of { key : string; branch : string }
  | Head of { key : string; branch : string }

type op_reply = Uid of uid | Value of string

let tokens_of_op = function
  | Put { key; branch; value } -> [ "put"; key; branch; value ]
  | Get { key; branch } -> [ "get"; key; branch ]
  | Head { key; branch } -> [ "head"; key; branch ]

let reply_of_op o (reply : Frame.reply) =
  match o, reply with
  | _, Error e -> Error e
  | (Put _ | Head _), Ok payload -> Result.map (fun u -> Uid u) (uid_of payload)
  | Get _, Ok payload -> Ok (Value payload)

let batch_tokens_retryable reqs = List.for_all tokens_retryable reqs

let batch ?user t ops =
  let reqs = List.map tokens_of_op ops in
  match
    run ~retryable:(batch_tokens_retryable reqs) t (fun mux ->
        Mux.batch ?user mux reqs)
  with
  | Error e -> Error (of_client_error e)
  | Ok replies -> Ok (List.map2 reply_of_op ops replies)

let batch_raw ?user t reqs =
  lift
    (run ~retryable:(batch_tokens_retryable reqs) t (fun mux ->
         Mux.batch ?user mux reqs))
