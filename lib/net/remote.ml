module Errors = Fb_core.Errors
module Forkbase = Fb_core.Forkbase
module Service = Fb_core.Service
module Obs = Fb_obs.Obs

type uid = Forkbase.uid

(* Dial parameters, kept verbatim for the transparent reconnect. *)
type params = {
  host : string option;
  port : int option;
  user : string option;
  max_frame : int option;
  timeout_s : float option;
}

type sub_event =
  | Head_moved of Forkbase.head_event
  | Gap of { resubscribed : bool }

(* Everything needed to resurrect a subscription on a fresh connection:
   the original filters plus the live server-side id (-1 while detached).
   [s_active] gates delivery so an unsubscribed callback can never fire
   again even if a push for the old sid is already in flight. *)
type sub_state = {
  s_user : string option;
  s_key : string option;
  s_branch : string option;
  s_cb : sub_event -> unit;
  mutable s_sid : int;
  mutable s_active : bool;
}

type t = {
  p : params;
  mu : Mutex.t;  (* guards [mux] swap, [user_closed], and the sub table *)
  mutable mux : Mux.t;
  mutable user_closed : bool;
  subs : (int, sub_state) Hashtbl.t;  (* local handle -> state *)
  mutable next_sub : int;
  mutable monitor_running : bool;
}

type subscription = int  (* local handle, stable across reconnects *)

(* The one place transport failures become typed: a dead socket is a
   transient condition (retry against the same or another server), not a
   storage-semantics error. *)
let of_client_error = function
  | Mux.Remote e -> e
  | Mux.Transport msg -> Errors.Transient ("network: " ^ msg)

let lift = function
  | Ok _ as ok -> ok
  | Error e -> Error (of_client_error e)

let connect ?host ?port ?user ?max_frame ?timeout_s () =
  match Mux.connect ?host ?port ?user ?max_frame ?timeout_s () with
  | Ok mux ->
    Ok
      { p = { host; port; user; max_frame; timeout_s };
        mu = Mutex.create (); mux; user_closed = false;
        subs = Hashtbl.create 4; next_sub = 0; monitor_running = false }
  | Error e -> Error (of_client_error e)

let close t =
  let mux =
    Mutex.protect t.mu (fun () ->
        t.user_closed <- true;
        Hashtbl.reset t.subs;
        t.mux)
  in
  Mux.close mux

(* A handle with live subscriptions stays "open" across a server bounce:
   the transport may be down right now, but the monitor thread is
   dialing and will resurrect the subscriptions — exactly the window
   where [forkbase watch]'s liveness loop must keep spinning. *)
let is_open t =
  Mutex.protect t.mu (fun () ->
      (not t.user_closed)
      && (Mux.is_open t.mux || Hashtbl.length t.subs > 0))

(* Bridge a wire event back into the local watch vocabulary: heads are
   parsed to uids, and the callback runs inside a [net.client.event]
   span joined to the writer's trace when the push carried one — the
   same trace id `forkbase top` / /tracez show for the write itself. *)
let wire_cb (st : sub_state) trace (ev : Frame.event) =
  if st.s_active then
    match Forkbase.parse_version ev.new_head with
    | Error _ -> ()  (* unintelligible push; drop rather than crash *)
    | Ok new_head ->
      let old_head =
        Option.bind ev.old_head (fun s ->
            Result.to_option (Forkbase.parse_version s))
      in
      let ctx =
        Option.map
          (fun (tr : Frame.trace) ->
            { Obs.trace_id = tr.trace_id; span_id = tr.parent_span })
          trace
      in
      Obs.with_span ?ctx
        ~attrs:[ ("key", ev.ev_key); ("branch", ev.ev_branch) ]
        "net.client.event"
        (fun () ->
          st.s_cb
            (Head_moved
               { Forkbase.key = ev.ev_key; branch = ev.ev_branch;
                 new_head; old_head }))

(* Re-issue every live subscription on a fresh connection, then tell each
   callback pushes may have been missed while we were dark ([Gap]).  Runs
   outside [t.mu]: [Mux.subscribe] is a blocking round trip. *)
let resubscribe_all t mux =
  let states =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold
          (fun _ st acc -> if st.s_active then st :: acc else acc)
          t.subs [])
  in
  List.iter
    (fun st ->
      let resubscribed =
        match
          Mux.subscribe ?user:st.s_user ?key:st.s_key ?branch:st.s_branch mux
            (wire_cb st)
        with
        | Ok sid ->
          st.s_sid <- sid;
          true
        | Error _ ->
          st.s_sid <- -1;
          false
      in
      (try st.s_cb (Gap { resubscribed }) with _ -> ()))
    states

(* One transparent reconnect: when the transport died under us (not by
   an explicit [close]), re-dial with the original parameters and retry
   — but only requests whose classification is [Read].  A mutating verb
   may have been applied before the connection tore; replaying it could
   double-apply, so it surfaces as [Transient] for the caller to decide.
   A fresh connection also resurrects live subscriptions (see
   [resubscribe_all]). *)
let reconnect_for t dead =
  let dialed =
    Mutex.protect t.mu (fun () ->
        if t.user_closed then None
        else if t.mux != dead then
          Some (t.mux, false)  (* another caller already did *)
        else begin
          Mux.close dead;
          match
            Mux.connect ?host:t.p.host ?port:t.p.port ?user:t.p.user
              ?max_frame:t.p.max_frame ?timeout_s:t.p.timeout_s ()
          with
          | Ok mux ->
            t.mux <- mux;
            Obs.log_event Obs.Info "remote reconnected";
            Some (mux, true)
          | Error _ -> None
        end)
  in
  match dialed with
  | None -> None
  | Some (mux, fresh) ->
    if fresh then resubscribe_all t mux;
    Some mux

(* Subscriptions are push-only: no pending request notices a dead socket.
   The monitor dials on their behalf so a watch session recovers from a
   server bounce without the caller issuing any request. *)
let monitor t =
  let rec loop () =
    Thread.delay 0.25;
    let closed = Mutex.protect t.mu (fun () -> t.user_closed) in
    if not closed then begin
      let mux = Mutex.protect t.mu (fun () -> t.mux) in
      let live_subs =
        Mutex.protect t.mu (fun () -> Hashtbl.length t.subs > 0)
      in
      if live_subs && not (Mux.is_open mux) then ignore (reconnect_for t mux);
      loop ()
    end
  in
  loop ()

let ensure_monitor t =
  let spawn =
    Mutex.protect t.mu (fun () ->
        if t.monitor_running then false
        else begin
          t.monitor_running <- true;
          true
        end)
  in
  if spawn then ignore (Thread.create monitor t)

let run ~retryable t f =
  let mux = Mutex.protect t.mu (fun () -> t.mux) in
  match f mux with
  | Ok _ as ok -> ok
  | Error (Mux.Remote _) as e -> e
  | Error (Mux.Transport _) as e ->
    if not retryable then e
    else if Mutex.protect t.mu (fun () -> t.user_closed) then e
    else (
      match reconnect_for t mux with
      | None -> e
      | Some mux -> f mux)

let tokens_retryable tokens =
  match tokens with
  (* chunk-put is Write-classified (the server excludes it globally) but
     content-addressed and therefore idempotent: replaying it after a
     torn connection cannot double-apply.  The one mutating verb safe to
     retry across a reconnect. *)
  | verb :: _ when String.lowercase_ascii verb = "chunk-put" -> true
  | _ -> (
    match Service.classify tokens with
    | Service.Read, _ -> true
    | Service.Write, _ -> false)

let raw ?user t tokens =
  lift
    (run ~retryable:(tokens_retryable tokens) t (fun mux ->
         Mux.request ?user mux tokens))

let raw_line ?user t line =
  match Fb_core.Service.tokenize line with
  | Error e -> Error (Errors.Invalid e)
  | Ok tokens -> raw ?user t tokens

let uid_of payload = Forkbase.parse_version payload

let unit_of (_ : string) = Ok ()

let lines_of payload =
  if payload = "" then [] else String.split_on_char '\n' payload

(* "branch uid" per line; the uid rendering never contains a blank, so
   splitting at the last one is unambiguous even for odd branch names. *)
let head_line line =
  match String.rindex_opt line ' ' with
  | None -> Error (Errors.Invalid ("bad head line: " ^ line))
  | Some i ->
    let branch = String.sub line 0 i in
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    Result.map (fun uid -> (branch, uid)) (uid_of v)

let heads_of payload =
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok heads ->
        Result.map (fun h -> h :: heads) (head_line line))
    (Ok []) (lines_of payload)
  |> Result.map List.rev

let op ?user t tokens parse = Result.bind (raw ?user t tokens) parse

(* ------------------------- the Forkbase mirror ------------------------- *)

let default_branch = "master"

let put ?user ?(branch = default_branch) t ~key value =
  op ?user t [ "put"; key; branch; value ] uid_of

let put_csv ?user ?(branch = default_branch) t ~key csv =
  op ?user t [ "put-csv"; key; branch; csv ] uid_of

let get ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "get"; key; branch ]

let get_at ?user t uid =
  raw ?user t [ "get-at"; Forkbase.version_string uid ]

let head ?user ?(branch = default_branch) t ~key =
  op ?user t [ "head"; key; branch ] uid_of

let latest ?user t ~key = op ?user t [ "latest"; key ] heads_of

let list_keys ?user t =
  Result.map lines_of (raw ?user t [ "list" ])

let log ?user ?(branch = default_branch) t ~key =
  Result.map lines_of (raw ?user t [ "log"; key; branch ])

let meta ?user t uid =
  raw ?user t [ "meta"; Forkbase.version_string uid ]

let fork ?user ?(from_branch = default_branch) t ~key ~new_branch =
  op ?user t [ "branch"; key; from_branch; new_branch ] uid_of

let rename_branch ?user t ~key ~from_branch ~to_branch =
  op ?user t [ "rename"; key; from_branch; to_branch ] unit_of

let merge ?user t ~key ~into ~from_branch =
  op ?user t [ "merge"; key; into; from_branch ] uid_of

let diff ?user t ~key ~branch1 ~branch2 =
  raw ?user t [ "diff"; key; branch1; branch2 ]

let verify ?user ?(branch = default_branch) t ~key =
  raw ?user t [ "verify"; key; branch ]

let prove ?user ?(branch = default_branch) t ~key ~entry_key =
  raw ?user t [ "prove"; key; branch; entry_key ]

let stat ?user t = raw ?user t [ "stat" ]
let metrics ?user t = raw ?user t [ "metrics" ]

(* ------------------------- subscriptions ------------------------- *)

let subscribe_events ?user ?key ?branch t cb =
  let st =
    { s_user = user; s_key = key; s_branch = branch; s_cb = cb;
      s_sid = -1; s_active = true }
  in
  let handle =
    Mutex.protect t.mu (fun () ->
        let h = t.next_sub in
        t.next_sub <- h + 1;
        Hashtbl.replace t.subs h st;
        h)
  in
  ensure_monitor t;
  let mux = Mutex.protect t.mu (fun () -> t.mux) in
  match Mux.subscribe ?user ?key ?branch mux (wire_cb st) with
  | Ok sid ->
    st.s_sid <- sid;
    Ok handle
  | Error e ->
    st.s_active <- false;
    Mutex.protect t.mu (fun () -> Hashtbl.remove t.subs handle);
    Error (of_client_error e)

let subscribe ?user ?key ?branch t cb =
  subscribe_events ?user ?key ?branch t (function
    | Head_moved ev -> cb ev
    | Gap _ -> ())

let unsubscribe ?user t handle =
  let st =
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.subs handle with
        | Some st ->
          st.s_active <- false;
          Hashtbl.remove t.subs handle;
          Some st
        | None -> None)
  in
  match st with
  | None -> Ok ()  (* already gone; unsubscribe is idempotent *)
  | Some st when st.s_sid < 0 -> Ok ()  (* detached: nothing server-side *)
  | Some st ->
    let mux = Mutex.protect t.mu (fun () -> t.mux) in
    lift (Mux.unsubscribe ?user mux st.s_sid)

(* ------------------------- batching ------------------------- *)

type op_req =
  | Put of { key : string; branch : string; value : string }
  | Get of { key : string; branch : string }
  | Head of { key : string; branch : string }

type op_reply = Uid of uid | Value of string

let tokens_of_op = function
  | Put { key; branch; value } -> [ "put"; key; branch; value ]
  | Get { key; branch } -> [ "get"; key; branch ]
  | Head { key; branch } -> [ "head"; key; branch ]

let reply_of_op o (reply : Frame.reply) =
  match o, reply with
  | _, Error e -> Error e
  | (Put _ | Head _), Ok payload -> Result.map (fun u -> Uid u) (uid_of payload)
  | Get _, Ok payload -> Ok (Value payload)

let batch_tokens_retryable reqs = List.for_all tokens_retryable reqs

let batch ?user t ops =
  let reqs = List.map tokens_of_op ops in
  match
    run ~retryable:(batch_tokens_retryable reqs) t (fun mux ->
        Mux.batch ?user mux reqs)
  with
  | Error e -> Error (of_client_error e)
  | Ok replies -> Ok (List.map2 reply_of_op ops replies)

let batch_raw ?user t reqs =
  lift
    (run ~retryable:(batch_tokens_retryable reqs) t (fun mux ->
         Mux.batch ?user mux reqs))

(* ------------------------- delta sync ------------------------- *)

module Sync = Fb_core.Sync
module Hash = Fb_hash.Hash
module Store = Fb_chunk.Store

let ( let* ) = Result.bind

(* Absent key/branch on the peer is a normal sync starting point, not an
   error: it means "the peer has none of this history yet". *)
let remote_head ?user ~branch t ~key =
  match head ?user ~branch t ~key with
  | Ok uid -> Ok (Some uid)
  | Error (Errors.Key_not_found _ | Errors.Branch_not_found _) -> Ok None
  | Error _ as e -> e

(* Split a child-first plan into sync-put batches bounded by count and
   cumulative payload bytes. *)
let rec take_put_batch staged acc acc_bytes n = function
  | [] -> (List.rev acc, [])
  | id :: rest as ids ->
    let encoded, _ = Hash.Tbl.find staged id in
    let sz = String.length encoded in
    if
      acc <> []
      && (n >= Sync.put_batch || acc_bytes + sz > Sync.put_batch_bytes)
    then (List.rev acc, ids)
    else
      take_put_batch staged ((id, encoded) :: acc) (acc_bytes + sz) (n + 1)
        rest

(* Take up to [n] entries off a queue. *)
let take_wave n q =
  let rec go acc k =
    if k = 0 || Queue.is_empty q then List.rev acc
    else go (Queue.pop q :: acc) (k - 1)
  in
  go [] n

let push ?user ?(branch = default_branch) t fb ~key =
  let store = Forkbase.store fb in
  let* local = Forkbase.head ?user ~branch fb ~key in
  let* remote = remote_head ?user ~branch t ~key in
  match remote with
  | Some r when Hash.equal r local ->
    Ok (local, { Sync.empty_stats with rounds = 1 })
  | _ ->
    (* Frontier walk: probe remote membership level by level, descending
       only below chunks the peer lacks — a chunk it holds roots a whole
       shared subtree (content addressing), so the walk stops there. *)
    let staged = Hash.Tbl.create 64 in  (* id -> (encoded, children) *)
    let seen = Hash.Tbl.create 64 in
    let skipped = ref 0 and rounds = ref 1 (* head probe *) in
    let bloom_fp = ref 0 in
    let pending = Queue.create () in
    let enqueue id =
      if not (Hash.Tbl.mem seen id) then begin
        Hash.Tbl.replace seen id ();
        Queue.add id pending
      end
    in
    enqueue local;
    (* One sync-bloom round buys local membership answers for the whole
       walk: a Bloom negative is a definitive miss (stage the chunk, no
       probe), a positive is only probable and is confirmed with an
       exact sync-have wave before being skipped — correctness never
       rests on the filter.  A saturated or unparsable filter (or an
       older server without the verb) degrades to exact waves only. *)
    let bloom =
      match raw ?user t [ "sync-bloom" ] with
      | Ok payload -> (
        incr rounds;
        match Sync.Bloom.decode payload with
        | Ok b when not (Sync.Bloom.saturated b) -> Some b
        | Ok _ | Error _ -> None)
      | Error _ -> None
    in
    (* Re-hash our own bytes before offering them: a tampered local
       store must not propagate. *)
    let stage id =
      match Store.peek store id with
      | None ->
        Error
          (Errors.Corrupt ("sync: local store lacks chunk " ^ Hash.to_hex id))
      | Some encoded ->
        let* chunk = Sync.verify_encoded id encoded in
        let kids = Sync.children chunk in
        Hash.Tbl.replace staged id (encoded, kids);
        List.iter enqueue kids;
        Ok ()
    in
    let rec probe () =
      if Queue.is_empty pending then Ok ()
      else begin
        let wave = take_wave Sync.have_batch pending in
        let missing_now, to_confirm =
          match bloom with
          | None -> ([], wave)
          | Some b ->
            List.partition (fun id -> not (Sync.Bloom.mem b id)) wave
        in
        let* () =
          List.fold_left
            (fun acc id ->
              let* () = acc in
              stage id)
            (Ok ()) missing_now
        in
        let* () =
          if to_confirm = [] then Ok ()
          else begin
            let* payload =
              raw ?user t ("sync-have" :: List.map Hash.to_hex to_confirm)
            in
            incr rounds;
            let* bits = Sync.decode_have payload in
            if List.length bits <> List.length to_confirm then
              Errors.invalid "sync-have: %d probes, %d answers"
                (List.length to_confirm) (List.length bits)
            else
              List.fold_left2
                (fun acc id have ->
                  let* () = acc in
                  if have then begin
                    incr skipped;
                    Ok ()
                  end
                  else begin
                    (* Bloom said "probably held"; the exact probe says
                       absent — a false positive the filter failed to
                       save a confirmation for. *)
                    if bloom <> None then incr bloom_fp;
                    stage id
                  end)
                (Ok ()) to_confirm bits
          end
        in
        probe ()
      end
    in
    let* () = probe () in
    let order =
      Sync.plan_order
        ~children:(fun id ->
          match Hash.Tbl.find_opt staged id with
          | Some (_, kids) -> kids
          | None -> [])
        ~missing:(Hash.Tbl.mem staged) ~roots:[ local ]
    in
    let bytes = ref 0 in
    let rec stream ids =
      match ids with
      | [] -> Ok ()
      | _ ->
        let batch, rest = take_put_batch staged [] 0 0 ids in
        let reqs =
          List.map
            (fun (id, encoded) ->
              [ "sync-put"; key; branch; Hash.to_hex id; encoded ])
            batch
        in
        let* replies = batch_raw ?user t reqs in
        incr rounds;
        let* () =
          List.fold_left
            (fun acc reply ->
              let* () = acc in
              Result.map ignore reply)
            (Ok ()) replies
        in
        List.iter
          (fun (_, encoded) -> bytes := !bytes + String.length encoded)
          batch;
        stream rest
    in
    let* () = stream order in
    let* payload =
      raw ?user t [ "sync-advance"; key; branch; Hash.to_hex local ]
    in
    incr rounds;
    let* uid = uid_of payload in
    Ok
      ( uid,
        { Sync.chunks_moved = Hash.Tbl.length staged; bytes_moved = !bytes;
          chunks_skipped = !skipped; rounds = !rounds; bloom_fp = !bloom_fp } )

let pull ?user ?(branch = default_branch) t fb ~key =
  let store = Forkbase.store fb in
  let* remote = head ?user ~branch t ~key in
  let local =
    Result.to_option (Forkbase.head ?user ~branch fb ~key)
  in
  match local with
  | Some l when Hash.equal l remote ->
    Ok (remote, { Sync.empty_stats with rounds = 1 })
  | _ ->
    (* Walk down from the remote head fetching chunks we lack; any chunk
       already held locally cuts the descent (shared subtree).  Every
       received chunk is re-hashed against the id we asked for — the
       whole closure is verified in staging before one byte reaches the
       local store, so an aborted or tampered transfer leaves it
       untouched. *)
    let staged = Hash.Tbl.create 64 in  (* id -> (chunk, children) *)
    let seen = Hash.Tbl.create 64 in
    let skipped = ref 0 and rounds = ref 1 (* head *) and bytes = ref 0 in
    let pending = Queue.create () in
    let enqueue id =
      if not (Hash.Tbl.mem seen id) then begin
        Hash.Tbl.replace seen id ();
        if Store.mem store id then incr skipped else Queue.add id pending
      end
    in
    enqueue remote;
    let rec fetch () =
      if Queue.is_empty pending then Ok ()
      else begin
        let wave = take_wave Sync.get_batch pending in
        let reqs = List.map (fun id -> [ "sync-get"; Hash.to_hex id ]) wave in
        let* replies = batch_raw ?user t reqs in
        incr rounds;
        let* () =
          List.fold_left2
            (fun acc id reply ->
              let* () = acc in
              let* encoded = reply in
              let* chunk = Sync.verify_encoded id encoded in
              let kids = Sync.children chunk in
              Hash.Tbl.replace staged id (chunk, kids);
              bytes := !bytes + String.length encoded;
              List.iter enqueue kids;
              Ok ())
            (Ok ()) wave replies
        in
        fetch ()
      end
    in
    let* () = fetch () in
    (* Child-first store order keeps the local store closure-complete at
       every instant, mirroring what [sync_put] demands of our peers. *)
    let order =
      Sync.plan_order
        ~children:(fun id ->
          match Hash.Tbl.find_opt staged id with
          | Some (_, kids) -> kids
          | None -> [])
        ~missing:(Hash.Tbl.mem staged) ~roots:[ remote ]
    in
    List.iter
      (fun id ->
        match Hash.Tbl.find_opt staged id with
        | Some (chunk, _) -> ignore (Store.put store chunk)
        | None -> ())
      order;
    let* uid = Forkbase.advance_head ?user ~branch fb ~key remote in
    Ok
      ( uid,
        { Sync.chunks_moved = Hash.Tbl.length staged; bytes_moved = !bytes;
          chunks_skipped = !skipped; rounds = !rounds; bloom_fp = 0 } )

(* ---------------------- remote chunk backend ---------------------- *)

module Chunk = Fb_chunk.Chunk

(* A remote node viewed as a plain chunk store: puts ride the
   closure-free chunk-put verb (storage members hold graph slices),
   reads ride sync-get, membership rides sync-have.  Transport failures
   and server-side Transient both surface as [Store.Transient] so
   Resilient_store / Cluster_store failover treats a dead node like any
   flaky medium; other typed errors are permanent and raise [Failure].
   Every get re-hashes the served bytes (Verified_store) — a lying node
   cannot slip forged chunks into a cluster.  [iter] and [delete] have
   no wire verbs (a member's physical enumeration and GC belong to the
   member) and raise [Failure] saying so rather than silently no-oping. *)
let chunk_store ?user t =
  let escalate ctx = function
    | Errors.Transient msg -> raise (Store.Transient msg)
    | e ->
      raise
        (Failure
           (Printf.sprintf "remote chunk store: %s: %s" ctx
              (Errors.to_string e)))
  in
  let unsupported op =
    raise
      (Failure
         (Printf.sprintf
            "remote chunk store: %s is not available over the wire" op))
  in
  let traffic = Mutex.create () in
  let local = ref Store.empty_stats in
  let bump f = Mutex.protect traffic (fun () -> local := f !local) in
  let read id =
    match raw ?user t [ "sync-get"; Hash.to_hex id ] with
    | Ok encoded -> Some encoded
    | Error (Errors.Version_not_found _) -> None
    | Error e -> escalate "get" e
  in
  let get_raw id =
    bump (fun s -> { s with Store.gets = s.Store.gets + 1 });
    read id
  in
  let get id =
    match get_raw id with
    | None -> None
    | Some encoded -> (
      match Chunk.decode encoded with Ok c -> Some c | Error _ -> None)
  in
  let put chunk =
    let id = Chunk.hash chunk in
    let encoded = Chunk.encode chunk in
    match raw ?user t [ "chunk-put"; Hash.to_hex id; encoded ] with
    | Ok _ ->
      bump (fun s ->
          { s with
            Store.puts = s.Store.puts + 1;
            logical_bytes = s.Store.logical_bytes + String.length encoded });
      id
    | Error e -> escalate "put" e
  in
  let mem id =
    match raw ?user t [ "sync-have"; Hash.to_hex id ] with
    | Ok bits -> String.length bits > 0 && bits.[0] = '1'
    | Error e -> escalate "mem" e
  in
  let stats () =
    (* Physical shape is the member's truth; this handle only knows its
       own traffic.  An unreachable member reports zero shape rather
       than failing a stats poll. *)
    let chunks, bytes =
      match raw ?user t [ "chunk-stat" ] with
      | Ok payload -> (
        try Scanf.sscanf payload "chunks=%d bytes=%d" (fun a b -> (a, b))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> (0, 0))
      | Error _ -> (0, 0)
    in
    let s = Mutex.protect traffic (fun () -> !local) in
    { s with Store.physical_chunks = chunks; physical_bytes = bytes }
  in
  let name =
    Printf.sprintf "remote(%s:%d)"
      (Option.value t.p.host ~default:"127.0.0.1")
      (Option.value t.p.port ~default:0)
  in
  let store =
    { Store.name;
      put;
      get;
      get_raw;
      peek = read;
      mem;
      stats;
      iter = (fun _ -> unsupported "iter");
      delete = (fun _ -> unsupported "delete") }
  in
  (* Tamper rejection on every read: bytes that do not hash to the id
     never leave the adapter. *)
  let verified, _violations = Fb_chunk.Verified_store.wrap store in
  verified
