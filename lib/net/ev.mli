(** Readiness notification for the event-loop server: epoll(7) on Linux,
    poll(2) everywhere else.

    The interest set is persistent — register an fd with {!modify},
    update its mask when interest changes, drop it with {!remove} — so
    the epoll backend pays O(changed fds) for registration and O(ready
    fds) per {!wait}.  That is the property that keeps tail latency flat
    across a C10K connection sweep; the poll fallback (non-Linux hosts)
    walks every registered fd per wait instead.  Neither backend shares
    [Unix.select]'s FD_SETSIZE ceiling of 1024 descriptors.

    The C stubs release the OCaml runtime lock while blocked, so the
    worker pool keeps dispatching while the I/O loop sleeps.  One loop
    thread owns an instance; it is not thread-safe. *)

type t

val create : unit -> t
(** Picks epoll when the host supports it, else poll. *)

val backend_name : t -> string
(** ["epoll"] or ["poll"] — surfaced in /healthz. *)

val modify : t -> Unix.file_descr -> int -> unit
(** Set [fd]'s interest mask ({!pollin} lor {!pollout}); [0] drops the
    fd from the set.  Redundant calls are free no-ops. *)

val remove : t -> Unix.file_descr -> unit
(** [remove t fd] = [modify t fd 0]. *)

val wait : t -> timeout_ms:int -> int
(** Block until an fd is ready or [timeout_ms] elapses ([-1] = forever);
    returns the number of ready entries, read via {!ready_fd} /
    {!ready_events}.  A signal interruption ([EINTR]) returns 0 ready
    entries instead of retrying, so the calling loop re-checks its
    lifecycle promptly even under a signal storm; it never escapes as
    an exception.
    @raise Unix.Unix_error on genuine backend failure. *)

val ready_fd : t -> int -> int
(** The raw fd number of the [i]-th ready entry of the last {!wait}. *)

val ready_events : t -> int -> int
(** The result mask of the [i]-th ready entry of the last {!wait}. *)

val close : t -> unit
(** Release the epoll instance fd (no-op for the poll backend). *)

val pollin : int
val pollout : int
val pollerr : int

val readable : int -> bool
val writable : int -> bool
val errored : int -> bool
(** [errored] covers error/hangup conditions — the connection is
    finished either way. *)

val fd_int : Unix.file_descr -> int
(** The raw fd number (identity on Unix). *)
