/* poll(2) binding for the event-loop server.
 *
 * Unix.select cannot register file descriptors numbered >= FD_SETSIZE
 * (1024 on Linux), which caps a select-driven loop far below the fd
 * budget the process actually has.  poll has no such limit: interest is
 * an array of (fd, events), sized by the caller.
 *
 * Calling convention (see Ev.poll): three int arrays of equal length --
 * fds, requested events, and an output array the stub fills with ready
 * events -- plus a timeout in milliseconds.  Event bits are the portable
 * subset: 1 = readable, 2 = writable, 4 = error/hangup/invalid.  The
 * runtime lock is released around the poll itself so worker threads keep
 * running while the loop sleeps; the pollfd array lives in C memory, so
 * a GC moving the OCaml arrays during the wait is harmless (results are
 * copied back only after the runtime is reacquired, through the rooted
 * values).
 */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

#define FB_POLL_IN 1
#define FB_POLL_OUT 2
#define FB_POLL_ERR 4

CAMLprim value fb_net_poll(value v_fds, value v_events, value v_revents,
                           value v_nfds, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_nfds, v_timeout_ms);
  long n = Long_val(v_nfds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int ret;
  long i;

  if (n < 0 || n > Wosize_val(v_fds) || n > Wosize_val(v_events)
      || n > Wosize_val(v_revents))
    caml_invalid_argument("Ev.poll: array lengths");

  if (n > 0) {
    pfds = malloc(sizeof(struct pollfd) * n);
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      long ev = Long_val(Field(v_events, i));
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = (short)(((ev & FB_POLL_IN) ? POLLIN : 0)
                               | ((ev & FB_POLL_OUT) ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) CAMLreturn(Val_long(-1)); /* caller retries */
    caml_unix_error(err, "poll", Nothing);
  }

  for (i = 0; i < n; i++) {
    short re = pfds[i].revents;
    long out = 0;
    if (re & POLLIN) out |= FB_POLL_IN;
    if (re & POLLOUT) out |= FB_POLL_OUT;
    if (re & (POLLERR | POLLHUP | POLLNVAL)) out |= FB_POLL_ERR;
    Field(v_revents, i) = Val_long(out);
  }
  free(pfds);
  CAMLreturn(Val_long(ret));
}

/* epoll(7) binding (Linux only).  poll is O(registered fds) per wait --
 * the kernel walks the whole interest array even when one fd is ready,
 * so per-request latency grows with the number of idle connections.
 * epoll keeps the interest set in the kernel and each wait costs
 * O(ready fds), which is what makes p99 flat across a C10K connection
 * sweep.  On non-Linux hosts fb_net_epoll_create returns -1 and the
 * OCaml side falls back to the poll path above.
 *
 * Event bits are the same portable triple as fb_net_poll.  Registration
 * ops: 0 = add, 1 = modify, 2 = delete (the OCaml wrapper tracks what
 * is registered, so the op is always known in advance). */

CAMLprim value fb_net_epoll_create(value v_unit)
{
#ifdef __linux__
  int fd = epoll_create1(0);
  (void)v_unit;
  return Val_int(fd); /* -1 on failure: caller falls back to poll */
#else
  (void)v_unit;
  return Val_int(-1);
#endif
}

CAMLprim value fb_net_epoll_ctl(value v_epfd, value v_op, value v_fd,
                                value v_events)
{
#ifdef __linux__
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  struct epoll_event ev;
  long opi = Long_val(v_op);
  long mask = Long_val(v_events);
  if (opi < 0 || opi > 2) caml_invalid_argument("Ev.epoll_ctl: op");
  ev.events = ((mask & FB_POLL_IN) ? EPOLLIN : 0)
              | ((mask & FB_POLL_OUT) ? EPOLLOUT : 0);
  ev.data.fd = Int_val(v_fd);
  if (epoll_ctl(Int_val(v_epfd), ops[opi], Int_val(v_fd), &ev) < 0)
    caml_unix_error(errno, "epoll_ctl", Nothing);
  return Val_unit;
#else
  (void)v_epfd; (void)v_op; (void)v_fd; (void)v_events;
  caml_invalid_argument("Ev.epoll_ctl: epoll unsupported on this platform");
#endif
}

CAMLprim value fb_net_epoll_wait(value v_epfd, value v_fds, value v_revents,
                                 value v_max, value v_timeout_ms)
{
#ifdef __linux__
  CAMLparam5(v_epfd, v_fds, v_revents, v_max, v_timeout_ms);
  long max = Long_val(v_max);
  int timeout = Int_val(v_timeout_ms);
  struct epoll_event *evs;
  int ret;
  long i;

  if (max <= 0 || max > Wosize_val(v_fds) || max > Wosize_val(v_revents))
    caml_invalid_argument("Ev.epoll_wait: array lengths");
  evs = malloc(sizeof(struct epoll_event) * max);
  if (evs == NULL) caml_raise_out_of_memory();

  caml_release_runtime_system();
  ret = epoll_wait(Int_val(v_epfd), evs, (int)max, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    free(evs);
    if (err == EINTR) CAMLreturn(Val_long(-1)); /* caller retries */
    caml_unix_error(err, "epoll_wait", Nothing);
  }
  for (i = 0; i < ret; i++) {
    long out = 0;
    if (evs[i].events & EPOLLIN) out |= FB_POLL_IN;
    if (evs[i].events & EPOLLOUT) out |= FB_POLL_OUT;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) out |= FB_POLL_ERR;
    Field(v_fds, i) = Val_long(evs[i].data.fd);
    Field(v_revents, i) = Val_long(out);
  }
  free(evs);
  CAMLreturn(Val_long(ret));
#else
  (void)v_epfd; (void)v_fds; (void)v_revents; (void)v_max; (void)v_timeout_ms;
  caml_invalid_argument("Ev.epoll_wait: epoll unsupported on this platform");
#endif
}
