(** Wire format of the ForkBase network service.

    Every message — request or response — travels as one {e frame}: an
    unsigned LEB128 varint length (minimal form, same as {!Fb_codec}'s
    integers) followed by exactly that many payload bytes.  Length-prefixed
    framing makes the stream unambiguous for payloads containing newlines,
    quotes or arbitrary binary — the failure mode of the line-oriented
    transport it replaces.

    Frame payloads are themselves {!Fb_codec} values:

    {v
    request  ::= u8 version(=1) | bytes user | list<bytes> tokens
    response ::= bool ok | bytes payload
    v}

    [tokens] is the verb + arguments exactly as {!Fb_core.Service.dispatch}
    consumes them — no re-tokenization happens server-side.

    The pure codecs below operate on strings (testable without sockets);
    the [_frame] IO pair operates on file descriptors with an optional
    per-frame deadline and a maximum frame size, so one bad peer can
    neither wedge a reader forever nor make it allocate unboundedly. *)

type error =
  | Eof        (** peer closed the stream *)
  | Timeout    (** per-frame deadline expired *)
  | Too_large of int  (** announced length exceeds the frame limit *)
  | Malformed of string  (** unparsable length prefix *)

val error_to_string : error -> string

val default_max_frame : int
(** 16 MiB. *)

(** {1 Pure codecs} *)

val encode_frame : string -> string
(** Varint length + payload. *)

val decode_frame :
  ?max_frame:int -> ?pos:int -> string ->
  ([ `Frame of string * int | `Need_more ], error) result
(** Decode one frame from [buf] starting at [pos].  [`Frame (payload,
    next)] returns the payload and the offset of the next frame;
    [`Need_more] means the buffer holds only a frame prefix.  Never
    raises. *)

val encode_request : user:string -> string list -> string
val decode_request : string -> (string * string list, string) result
(** [(user, tokens)]; rejects unknown protocol versions and trailing
    garbage. *)

val encode_response : ok:bool -> string -> string
val decode_response : string -> (bool * string, string) result

(** {1 Socket IO} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame.  @raise Unix.Unix_error on transport
    failure (e.g. [EPIPE] once the peer is gone). *)

val read_frame :
  ?max_frame:int -> ?timeout_s:float -> Unix.file_descr ->
  (string, error) result
(** Read one complete frame.  [timeout_s] bounds the {e whole} frame, so
    a byte-at-a-time peer cannot hold the reader past the deadline; no
    timeout means block indefinitely.  On [Too_large] the length prefix
    has been consumed but the payload has not — the stream is
    desynchronized and the connection should be closed.  Never raises on
    EOF/timeout; [Unix.Unix_error] can still escape for genuine socket
    failures. *)

val resolve_host : string -> (Unix.inet_addr, string) result
(** Dotted quad, or a name via [gethostbyname]. *)
