(** Wire format of the ForkBase network service (protocol version 2).

    Every message — request or response — travels as one {e frame}: an
    unsigned LEB128 varint length (minimal form, same as {!Fb_codec}'s
    integers) followed by exactly that many payload bytes.  Length-prefixed
    framing makes the stream unambiguous for payloads containing newlines,
    quotes or arbitrary binary — the failure mode of the line-oriented
    transport it replaces.

    Frame payloads are themselves {!Fb_codec} values:

    {v
    request  ::= u8 version(=2) | u8 kind' | bytes user | trace? | seq? | body
      kind' = kind lor 0x80 (trace header present)
                   lor 0x40 (sequence id present)
      trace           : bytes trace-id | zigzag parent-span-id
      seq             : varint sequence-id
      kind 0 (single) : body = list<bytes> tokens
      kind 1 (batch)  : body = list< list<bytes> > sub-requests
    response ::= u8 kind' | trace? | seq? | body
      kind 0 (single) : body = reply
      kind 1 (batch)  : body = list<reply>
      kind 2 (event)  : body = varint sub-id | bytes key | bytes branch
                             | bytes new-head | bool | bytes old-head?
    reply    ::= u8 status | fields
      status 0        : bytes payload
      status 1..9     : the fields of the matching Errors.t constructor
    v}

    The trace header carries the caller's {!Fb_obs.Obs} position — a
    128-bit trace id (32 hex chars) and the client span id that server
    spans should parent under — so one trace id links client-side and
    server-side spans of a request.  It is strictly optional: a
    header-less v2 frame (kind byte [0]/[1]) parses exactly as before,
    which keeps tracing-unaware peers and [FB_OBS=0] clients
    compatible.

    The sequence id (flag [0x40], alongside the [0x80] trace bit) is the
    pipelining handle: a client may keep many tagged requests in flight
    on one connection; the server echoes each request's sequence id on
    its reply, which may therefore arrive out of order.  Requests
    without a sequence id retain strict in-order request/response
    semantics.  Response kind [2] is a {e server-initiated} frame: a
    branch-head movement pushed to a SUBSCRIBE registration, tagged with
    the subscription id (never a sequence id) and — when the mutating
    request was traced — the writer's trace header, so a push can be
    correlated with the write that caused it.

    [tokens] is the verb + arguments exactly as {!Fb_core.Service.dispatch}
    consumes them — no re-tokenization happens server-side.  A batch
    frame carries N sub-requests that the server executes under a single
    lock acquisition, answering with one reply per sub-request in order
    (round-trip and locking amortization — the BATCH wire verb).

    Replies carry a {e typed} status: [Ok payload] or [Error] with the
    {!Fb_core.Errors.t} constructor encoded field by field, so remote
    callers recover the same typed errors local callers get and string
    rendering stays at the CLI edge.  Version 1 frames (bool + rendered
    English) are rejected by version number with a clean error.

    The pure codecs below operate on strings (testable without sockets);
    the [_frame] IO operates on file descriptors with an optional
    deadline and a maximum frame size, so one bad peer can neither wedge
    a reader forever nor make it allocate unboundedly. *)

type error =
  | Eof        (** peer closed the stream *)
  | Timeout    (** deadline expired *)
  | Too_large of int  (** announced length exceeds the frame limit *)
  | Malformed of string  (** unparsable length prefix *)

val error_to_string : error -> string

val default_max_frame : int
(** 16 MiB. *)

val protocol_version : int
(** 2. *)

(** {1 Pure codecs} *)

val encode_frame : string -> string
(** Varint length + payload. *)

val decode_frame :
  ?max_frame:int -> ?pos:int -> string ->
  ([ `Frame of string * int | `Need_more ], error) result
(** Decode one frame from [buf] starting at [pos].  [`Frame (payload,
    next)] returns the payload and the offset of the next frame;
    [`Need_more] means the buffer holds only a frame prefix.  Never
    raises. *)

type request =
  | Single of string list          (** one verb + arguments *)
  | Batch of string list list      (** N sub-requests, one lock, N replies *)

type trace = { trace_id : string; parent_span : int }
(** The optional trace header: the caller's trace id and the span the
    server should record its request span under. *)

val encode_request :
  user:string -> ?trace:trace -> ?seq:int -> request -> string
(** [seq] must be non-negative (it travels as an unsigned varint). *)

val decode_request :
  string -> (string * trace option * int option * request, string) result
(** [(user, trace, seq, request)]; rejects unknown protocol versions
    (including v1), unknown kinds and trailing garbage. *)

type reply = (string, Fb_core.Errors.t) result
(** What one verb returns across the wire — same type the local
    {!Fb_core.Service.dispatch} produces. *)

type event = {
  sub_id : int;            (** the SUBSCRIBE registration this is for *)
  ev_key : string;
  ev_branch : string;
  new_head : string;       (** rendered (Base32) version uid *)
  old_head : string option;  (** [None] when the branch was created *)
}
(** A branch-head movement pushed by the server — the wire form of
    {!Fb_core.Forkbase.head_event}. *)

type response = One of reply | Many of reply list | Event of event

val encode_response : ?trace:trace -> ?seq:int -> response -> string
val decode_response :
  string -> (trace option * int option * response, string) result
(** [(trace, seq, response)].  [seq] echoes the request's sequence id
    (always absent on [Event] frames); [trace] appears on [Event] frames
    pushed on behalf of a traced write. *)

(** {1 Socket IO} *)

val deadline_of_timeout : float option -> float option
(** [Some t] with [t > 0.] becomes an absolute deadline; [None] or a
    non-positive timeout means no deadline.  Every IO helper below (and
    {!Client.connect}) derives its deadline through this single
    function, so "[<= 0.] disables" holds uniformly. *)

val wait_readable :
  Unix.file_descr -> float option -> (unit, error) result
val wait_writable :
  Unix.file_descr -> float option -> (unit, error) result
(** Block until the fd is ready or the absolute deadline passes. *)

val write_frame :
  ?timeout_s:float -> Unix.file_descr -> string -> (unit, error) result
(** Write one complete frame; the optional deadline covers the whole
    frame.  @raise Unix.Unix_error on transport failure (e.g. [EPIPE]
    once the peer is gone). *)

val read_frame :
  ?max_frame:int -> ?timeout_s:float -> Unix.file_descr ->
  (string, error) result
(** Read one complete frame.  [timeout_s] bounds the {e whole} frame, so
    a byte-at-a-time peer cannot hold the reader past the deadline;
    omitted or [<= 0.] means block indefinitely.  On [Too_large] the
    length prefix has been consumed but the payload has not — the stream
    is desynchronized and the connection should be closed.  Never raises
    on EOF/timeout; [Unix.Unix_error] can still escape for genuine
    socket failures. *)

val resolve_host : string -> (Unix.inet_addr, string) result
(** Dotted quad, or a name via [gethostbyname]. *)
