module Errors = Fb_core.Errors
module Store = Fb_chunk.Store
module Cluster_store = Fb_chunk.Cluster_store
module Provider = Fb_chunk.Store_provider

type node = { host : string; port : int }

let render_node n = Printf.sprintf "%s:%d" n.host n.port

let parse_node s =
  match String.rindex_opt s ':' with
  | None -> (
    (* A bare port is a local node — the common single-machine case. *)
    match int_of_string_opt s with
    | Some port when port > 0 && port < 65536 ->
      Ok { host = "127.0.0.1"; port }
    | _ -> Error (Printf.sprintf "bad node %S (want host:port)" s))
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some port when port > 0 && port < 65536 && host <> "" ->
      Ok { host; port }
    | _ -> Error (Printf.sprintf "bad node %S (want host:port)" s))

let parse_nodes s =
  let parts =
    List.filter
      (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if parts = [] then Error "empty node list"
  else
    List.fold_left
      (fun acc p ->
        Result.bind acc (fun nodes ->
            Result.map (fun n -> n :: nodes) (parse_node p)))
      (Ok []) parts
    |> Result.map List.rev

(* ----------------------------- CLUSTER file ---------------------------- *)

let cluster_file root = Filename.concat root "CLUSTER"

type topology = {
  nodes : (node * int option) list;
  t_replicas : int option;
  t_virtual_nodes : int option;
}

let read_topology path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error e -> Error e
  | lines ->
    List.fold_left
      (fun acc line ->
        Result.bind acc (fun topo ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then Ok topo
            else
              match String.index_opt line '=' with
              | Some i when not (String.contains line ' ') -> (
                let k = String.sub line 0 i in
                let v =
                  String.sub line (i + 1) (String.length line - i - 1)
                in
                match k, int_of_string_opt v with
                | "replicas", Some n -> Ok { topo with t_replicas = Some n }
                | "virtual_nodes", Some n ->
                  Ok { topo with t_virtual_nodes = Some n }
                | _ -> Error (Printf.sprintf "bad CLUSTER line %S" line))
              | _ ->
                (* "host:port [pid=N] …" — first field is the node,
                   trailing fields are tooling metadata. *)
                let fields =
                  List.filter
                    (fun f -> f <> "")
                    (String.split_on_char ' ' line)
                in
                let pid =
                  List.find_map
                    (fun f ->
                      if String.length f > 4 && String.sub f 0 4 = "pid="
                      then
                        int_of_string_opt
                          (String.sub f 4 (String.length f - 4))
                      else None)
                    fields
                in
                (match fields with
                | node :: _ ->
                  Result.map
                    (fun n -> { topo with nodes = topo.nodes @ [ (n, pid) ] })
                    (parse_node node)
                | [] -> Ok topo)))
      (Ok { nodes = []; t_replicas = None; t_virtual_nodes = None })
      lines

let write_topology path topo =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Option.iter
          (fun r -> Printf.fprintf oc "replicas=%d\n" r)
          topo.t_replicas;
        Option.iter
          (fun v -> Printf.fprintf oc "virtual_nodes=%d\n" v)
          topo.t_virtual_nodes;
        List.iter
          (fun (n, pid) ->
            match pid with
            | Some pid ->
              Printf.fprintf oc "%s pid=%d\n" (render_node n) pid
            | None -> Printf.fprintf oc "%s\n" (render_node n))
          topo.nodes)
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

(* --------------------------- lazy member dial --------------------------- *)

(* One member = one Remote handle, dialed on first use and re-dialed
   after the handle is torn down.  A failed dial is a [Store.Transient]
   (the routing tier fails over and retries later), so a down node never
   wedges the cluster — and a restarted node rejoins the moment a dial
   succeeds.  The Remote handle itself survives server bounces for
   read-classified verbs (and the idempotent chunk-put), so steady-state
   traffic rarely re-enters the dial path. *)
type member = {
  node : node;
  m_user : string option;
  m_timeout_s : float option;
  m_lock : Mutex.t;
  mutable m_remote : (Remote.t * Store.t) option;
}

let member_obtain m =
  Mutex.protect m.m_lock (fun () ->
      match m.m_remote with
      | Some (r, s) when Remote.is_open r -> s
      | cur -> (
        (match cur with Some (r, _) -> Remote.close r | None -> ());
        m.m_remote <- None;
        match
          Remote.connect ~host:m.node.host ~port:m.node.port
            ?user:m.m_user ?timeout_s:m.m_timeout_s ()
        with
        | Ok r ->
          let s = Remote.chunk_store ?user:m.m_user r in
          m.m_remote <- Some (r, s);
          s
        | Error e ->
          raise
            (Store.Transient
               (Printf.sprintf "dial %s: %s" (render_node m.node)
                  (Errors.to_string e)))))

let member_store m =
  { Store.name = "node(" ^ render_node m.node ^ ")";
    put = (fun c -> (member_obtain m).Store.put c);
    get = (fun id -> (member_obtain m).Store.get id);
    get_raw = (fun id -> (member_obtain m).Store.get_raw id);
    peek = (fun id -> (member_obtain m).Store.peek id);
    mem = (fun id -> (member_obtain m).Store.mem id);
    stats =
      (fun () ->
        match member_obtain m with
        | s -> s.Store.stats ()
        | exception Store.Transient _ -> Store.empty_stats);
    iter = (fun f -> (member_obtain m).Store.iter f);
    delete = (fun id -> (member_obtain m).Store.delete id) }

let member_close m =
  Mutex.protect m.m_lock (fun () ->
      (match m.m_remote with Some (r, _) -> Remote.close r | None -> ());
      m.m_remote <- None)

(* ----------------------------- live handle ----------------------------- *)

type t = {
  c : Cluster_store.t;
  members : member list;
}

let connect ?name ?replicas ?virtual_nodes ?user ?timeout_s ~nodes () =
  match nodes with
  | [] -> Error (Errors.Invalid "cluster: empty node list")
  | _ -> (
    let members =
      List.map
        (fun node ->
          { node; m_user = user; m_timeout_s = timeout_s;
            m_lock = Mutex.create (); m_remote = None })
        nodes
    in
    match
      Cluster_store.create ?name ?replicas ?virtual_nodes
        ~members:
          (List.map (fun m -> (render_node m.node, member_store m)) members)
        ()
    with
    | c -> Ok { c; members }
    | exception Invalid_argument e -> Error (Errors.Invalid e))

let store t = Cluster_store.store t.c
let cluster t = t.c
let nodes t = List.map (fun m -> m.node) t.members

(* Any id works as a liveness probe: sync-have answers for ids the node
   has never seen, and unlike the stats poll it raises when the node is
   unreachable. *)
let probe_id = Fb_hash.Hash.of_string "forkbase-cluster-liveness-probe"

let probe t =
  List.map
    (fun m ->
      let up =
        match (member_obtain m).Store.mem probe_id with
        | (_ : bool) -> true
        | exception _ -> false
      in
      Cluster_store.set_down t.c (render_node m.node) (not up);
      (m.node, up))
    t.members

let close t =
  List.iter member_close t.members;
  Cluster_store.close t.c

(* ------------------------ provider registration ------------------------ *)

type Provider.handle += Cluster_handle of t

let param params key = List.assoc_opt key params

let int_param params key =
  Option.bind (param params key) int_of_string_opt

let register_provider () =
  Provider.register
    { Provider.name = "cluster";
      doc =
        "consistent-hash cluster of forkbase serve nodes (params: \
         nodes=host:port,… replicas= virtual_nodes= user=; falls back to \
         <root>/CLUSTER)";
      detect = (fun root -> Sys.file_exists (cluster_file root));
      open_ =
        (fun c ->
          let params = c.Provider.params in
          let from_file =
            let path = cluster_file c.Provider.root in
            if Sys.file_exists path then Result.to_option (read_topology path)
            else None
          in
          let nodes =
            match param params "nodes" with
            | Some s -> Result.map_error Fun.id (parse_nodes s)
            | None -> (
              match from_file with
              | Some topo when topo.nodes <> [] ->
                Ok (List.map fst topo.nodes)
              | _ ->
                Error
                  (Printf.sprintf
                     "cluster backend needs nodes=host:port,… or %s"
                     (cluster_file c.Provider.root)))
          in
          match nodes with
          | Error e -> Error e
          | Ok nodes -> (
            let pick key file_value =
              match int_param params key with
              | Some v -> Some v
              | None -> Option.bind from_file file_value
            in
            let replicas = pick "replicas" (fun t -> t.t_replicas) in
            let virtual_nodes =
              pick "virtual_nodes" (fun t -> t.t_virtual_nodes)
            in
            match
              connect ?replicas ?virtual_nodes ?user:(param params "user")
                ~nodes ()
            with
            | Error e -> Error (Errors.to_string e)
            | Ok t ->
              Ok
                { Provider.store = store t;
                  kind = "cluster";
                  (* Members are forkbase serve processes that own their
                     durability (each node's log engine acknowledges
                     before replying), so the router has no barrier of
                     its own to force. *)
                  sync = Fun.const ();
                  close = (fun () -> close t);
                  handle = Some (Cluster_handle t) })) }
