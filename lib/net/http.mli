(** Minimal HTTP/1.0 sidecar serving the node's scrape endpoints.

    Deliberately tiny: GET only, one response per connection,
    [Connection: close], hard deadline and size bound on the request
    head — enough for [curl], a Prometheus scraper or a browser tab, by
    construction free of keep-alive/pipelining/body attack surface.
    It binds its own port (the server's [--metrics-port]) so operational
    traffic never mixes with the binary protocol socket.

    The route table lives in the handler: it receives the request path
    (query string stripped) and returns a reply, or [None] for 404. *)

type reply = { status : int; content_type : string; body : string }

type handler = string -> reply option

val text : string -> reply
(** 200 [text/plain; charset=utf-8]. *)

val json : string -> reply
(** 200 [application/json]. *)

type t

val start : ?host:string -> port:int -> handler -> (t, string) result
(** Bind and start the accept thread.  [port = 0] binds an ephemeral
    port (see {!port}).  Default host ["127.0.0.1"] — expose a node's
    telemetry beyond localhost deliberately, not by default. *)

val port : t -> int
(** The bound port (resolves [port = 0]). *)

val stop : t -> unit
(** Close the listener and join the accept thread.  Idempotent.
    In-flight connection threads finish on their own deadline. *)
