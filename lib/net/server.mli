(** Multi-client TCP server for the ForkBase service verbs.

    Thread-per-connection over one shared {!Fb_core.Forkbase.t}, with a
    {e striped reader-writer} concurrency layer in place of a coarse
    instance mutex: {!Fb_core.Service.classify} sorts every verb into
    read-only vs. mutating and key-scoped vs. instance-wide.  Read-only
    verbs ([get], [head], [latest], [diff], [list], [stat], [metrics],
    …) share their key's stripe and run concurrently; mutating verbs
    ([put], [merge], [branch], [rename], …) take the stripe exclusively;
    instance-wide verbs span all stripes.  The locks are
    write-preferring ({!Rwlock}), so a steady read load cannot starve
    writers.  Watch callbacks triggered by a mutation are delivered
    {e after} the exclusive section is released
    ({!Fb_core.Forkbase.with_deferred_watch}).

    A [Frame.Batch] request (the BATCH wire verb) executes its N
    sub-requests under a {e single} lock acquisition — exclusive if any
    sub-request mutates, one stripe when all sub-requests address the
    same key — and answers with one typed reply per sub-request, in
    order.

    Robustness against bad peers: a per-connection read deadline covers
    the {e whole} frame (a byte-at-a-time writer cannot wedge its thread
    past the deadline), frames above [max_frame] are refused before any
    allocation, and the same deadline bounds response writes (a peer
    that stops draining its socket cannot pin a connection thread).

    Durability: an optional [save] callback (typically
    [Persistent.save ~fsync:true]) runs under a global exclusive
    acquisition every [save_every_s] seconds and once more during
    {!stop}, so SIGTERM leaves an intact, fsynced branch table.

    Observability ({!Fb_obs}): counters [fb.net.connections],
    [fb.net.frames], [fb.net.errors] (protocol/transport),
    [fb.net.request_errors] (verbs answering a typed error),
    [fb.net.save_errors], [fb.net.batches], [fb.net.batch_subrequests],
    [fb.net.read_verbs], [fb.net.write_verbs]; gauge
    [fb.net.connections_active]; per-verb latency histograms
    [fb.net.<verb>_seconds] (lock wait included — that is the latency a
    client observes), with batches timed under [fb.net.batch_seconds].

    Tracing: every request runs inside a [net.server.request] (or
    [net.server.batch]) span.  When the frame carries a trace header
    ({!Frame.trace}, stamped by {!Client}), the span joins the client's
    trace as a child of the client span — one trace id across both
    processes.  Each BATCH sub-request gets its own [net.server.<verb>]
    child span, and lock acquisition shows up as the [rwlock.wait] span
    {!Rwlock} records.  Requests slower than [slow_ms] emit a [Warn]
    event ({!Fb_obs.Obs.log_event}) and park their rendered span tree in
    a bounded ring served at [/tracez].

    Telemetry sidecar: with [metrics_port] set, a tiny HTTP/1.0 listener
    ({!Http}) serves [/metrics] (Prometheus exposition), [/healthz]
    (liveness JSON), [/tracez] (recent slow traces) and [/trace.json]
    (Chrome [trace_event] dump of the span ring) on a separate port. *)

type config = {
  host : string;          (** bind address; default ["127.0.0.1"] *)
  port : int;             (** [0] picks an ephemeral port — see {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout_s : float; (** per-frame read/write deadline; [<= 0.] disables *)
  save_every_s : float;   (** periodic save cadence; [<= 0.] disables *)
  default_user : string;  (** applied when a request carries no user *)
  concurrency : [ `Striped | `Coarse ];
  (** [`Striped] (default): classified reader-writer locking as above.
      [`Coarse]: every request takes a global exclusive section — the
      pre-v2 behavior, kept selectable for benchmarking and as an
      operational escape hatch. *)
  stripes : int;          (** lock stripes; default 16, clamped to >= 1 *)
  metrics_port : int option;
  (** bind the HTTP telemetry sidecar here ([Some 0] = ephemeral, see
      {!metrics_port}); [None] (default) = no sidecar *)
  slow_ms : float;
  (** slow-request threshold in milliseconds; requests at or above it
      are logged and kept for [/tracez].  Default: [FB_SLOW_MS] from the
      environment, else [infinity] (disabled). *)
}

val default_config : config
(** [127.0.0.1:7447], backlog 64, {!Frame.default_max_frame}, 30 s read
    timeout, save every 5 s, user ["anonymous"], [`Striped] with 16
    stripes, no metrics sidecar, slow log per [FB_SLOW_MS]. *)

type t

val start :
  ?config:config -> ?save:(unit -> unit) -> Fb_core.Forkbase.t ->
  (t, string) result
(** Bind, listen and return immediately; connections are served on
    background threads.  Also ignores [SIGPIPE] process-wide (a vanished
    peer must surface as [EPIPE], not kill the daemon). *)

val port : t -> int
(** The bound port — the ephemeral port when [config.port = 0]. *)

val metrics_port : t -> int option
(** The sidecar's bound port when [config.metrics_port] was set and the
    sidecar started; [None] otherwise. *)

val slow_trace_count : t -> int
(** Entries currently held in the slow-request ring (exposed for tests
    and [/healthz]). *)

val is_running : t -> bool

val stop : t -> unit
(** Graceful, idempotent shutdown: stop accepting, wake and drain
    connection threads, run the final [save].  Safe to call from a
    signal-driven context. *)

val run : t -> unit
(** Block until {!stop} is called or SIGINT/SIGTERM arrives (handlers
    are installed for the duration of the call and restored after), then
    shut down gracefully. *)
