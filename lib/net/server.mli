(** Multi-client TCP server for the ForkBase service verbs.

    Two engines share one {!Fb_core.Forkbase.t} and one request-
    processing core:

    {b Event mode} (default): a single poll(2)-driven I/O loop ({!Ev})
    owns every socket — it accepts, reads frames incrementally into
    per-connection buffers, and drains per-connection outboxes on
    writability — while a fixed pool of [workers] threads executes
    dispatches under the striped rwlocks and hands finished replies back
    through a wakeup pipe.  Connection cost is a few hundred bytes of
    state instead of a thread stack, which is what lets one process hold
    thousands of concurrent connections (the C10K sweep in the bench
    suite).

    {b Threaded mode} ([mode = `Threaded]): the original
    thread-per-connection engine, kept selectable for A/B benchmarking
    and as an operational escape hatch.

    {b Pipelining}: requests tagged with a sequence id ({!Frame}, flag
    [0x40]) may be answered out of order; the server echoes the id on
    the reply and admits up to [max_pipeline] of them concurrently per
    connection.  Un-tagged requests keep the strict in-order contract:
    one is admitted only when nothing else is in flight, and it blocks
    later frames until answered.

    {b Backpressure}: each connection's outbox is bounded by
    [max_outbox]; once it (or the parked-request queue) fills, the loop
    stops reading from that connection, so a slow consumer throttles
    itself instead of ballooning server memory.  A peer whose outbox
    makes no write progress for [write_stall_s] seconds is disconnected.
    The idle read deadline only fires on truly quiet connections —
    nothing in flight, nothing buffered, no subscriptions.

    {b SUBSCRIBE push} (event mode only): [subscribe [key|*] [branch|*]]
    registers a branch-head watch and answers with a subscription id;
    matching head movements — whoever caused them — are pushed as
    server-initiated [Event] frames ({!Frame.event}) on that connection.
    Deliveries ride the deferred-watch queue, so they fire after the
    writer's exclusive section is released, and they carry the writer's
    trace header when the mutating request was traced.  [unsubscribe
    <id>] deregisters.  Both verbs are handled on the loop thread and
    never visit the worker pool.  The threaded engine rejects
    [subscribe] with a typed error (it has no push path).

    Concurrency layer (both modes): {!Fb_core.Service.classify} sorts
    every verb into read-only vs. mutating and key-scoped vs.
    instance-wide.  Read-only verbs share their key's stripe and run
    concurrently; mutating verbs take the stripe exclusively;
    instance-wide verbs span all stripes.  The locks are
    write-preferring ({!Rwlock}).  Watch callbacks triggered by a
    mutation are delivered {e after} the exclusive section is released
    ({!Fb_core.Forkbase.with_deferred_watch}).  A [Frame.Batch] request
    executes its N sub-requests under a {e single} lock acquisition and
    answers with one typed reply per sub-request, in order.

    Durability: an optional [save] callback (typically
    [Persistent.save ~fsync:true]) runs under a global exclusive
    acquisition every [save_every_s] seconds and once more during
    {!stop}, so SIGTERM leaves an intact, fsynced branch table.

    Observability ({!Fb_obs}): counters [fb.net.connections],
    [fb.net.frames], [fb.net.errors] (protocol/transport),
    [fb.net.request_errors] (verbs answering a typed error),
    [fb.net.save_errors], [fb.net.batches], [fb.net.batch_subrequests],
    [fb.net.read_verbs], [fb.net.write_verbs], [fb.net.subscribes],
    [fb.net.events_pushed], [fb.net.stall_disconnects],
    [fb.net.conns_shed]; gauges [fb.net.connections_active] and (event
    mode) [fb.net.loop.connections], [fb.net.loop.outbox_hwm_bytes],
    [fb.net.loop.worker_queue_depth], [fb.net.loop.subscriptions];
    per-verb latency histograms [fb.net.<verb>_seconds].

    Tracing: every request runs inside a [net.server.request] (or
    [net.server.batch]) span — in event mode that span lives on the
    worker thread that executes the dispatch.  When the frame carries a
    trace header ({!Frame.trace}), the span joins the client's trace as
    a child of the client span.  Requests slower than [slow_ms] emit a
    [Warn] event and park their rendered span tree in a bounded ring
    served at [/tracez].

    Telemetry sidecar: with [metrics_port] set, a tiny HTTP/1.0 listener
    ({!Http}) serves [/metrics] (Prometheus exposition), [/healthz]
    (liveness JSON — in event mode including open connections, outbox
    high-water mark, worker-queue depth and subscription count),
    [/tracez] (recent slow traces) and [/trace.json] (Chrome
    [trace_event] dump of the span ring) on a separate port. *)

type mode = [ `Event | `Threaded ]

type config = {
  host : string;          (** bind address; default ["127.0.0.1"] *)
  port : int;             (** [0] picks an ephemeral port — see {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout_s : float;
  (** idle deadline; [<= 0.] disables.  Event mode: closes connections
      with nothing in flight, nothing buffered and no subscriptions.
      Threaded mode: per-frame read/write deadline as before. *)
  save_every_s : float;   (** periodic save cadence; [<= 0.] disables *)
  default_user : string;  (** applied when a request carries no user *)
  concurrency : [ `Striped | `Coarse ];
  (** [`Striped] (default): classified reader-writer locking as above.
      [`Coarse]: every request takes a global exclusive section — kept
      selectable for benchmarking and as an operational escape hatch. *)
  stripes : int;          (** lock stripes; default 16, clamped to >= 1 *)
  metrics_port : int option;
  (** bind the HTTP telemetry sidecar here ([Some 0] = ephemeral, see
      {!metrics_port}); [None] (default) = no sidecar *)
  slow_ms : float;
  (** slow-request threshold in milliseconds; requests at or above it
      are logged and kept for [/tracez].  Default: [FB_SLOW_MS] from the
      environment, else [infinity] (disabled). *)
  mode : mode;            (** engine selection; default [`Event] *)
  workers : int;          (** event mode: dispatch threads; default 4 *)
  max_conns : int;
  (** accept ceiling (both modes); connections beyond it are shed with
      an immediate close.  Default 10_000. *)
  max_outbox : int;
  (** event mode: per-connection outbox bound in bytes before the loop
      stops reading from that connection.  Default 4 MiB. *)
  write_stall_s : float;
  (** event mode: disconnect a peer whose nonempty outbox makes no write
      progress for this long; [<= 0.] disables.  Default 30 s. *)
  max_pipeline : int;
  (** event mode: sequence-tagged requests admitted concurrently per
      connection.  Default 128. *)
}

val default_config : config
(** [127.0.0.1:7447], backlog 64, {!Frame.default_max_frame}, 30 s read
    timeout, save every 5 s, user ["anonymous"], [`Striped] with 16
    stripes, no metrics sidecar, slow log per [FB_SLOW_MS]; event mode
    with 4 workers, 10_000 connections, 4 MiB outboxes, 30 s write-stall
    deadline, pipeline depth 128. *)

type t

type loop_stats = {
  ls_conns : int;          (** connections currently open *)
  ls_outbox_hwm : int;     (** largest outbox observed, bytes *)
  ls_worker_queue : int;   (** jobs waiting for a worker right now *)
  ls_subscriptions : int;  (** live SUBSCRIBE registrations *)
}

val loop_stats : t -> loop_stats option
(** Event-loop health snapshot; [None] in threaded mode.  The same
    numbers are exported as [fb.net.loop.*] gauges and in [/healthz]. *)

val start :
  ?config:config -> ?save:(unit -> unit) -> Fb_core.Forkbase.t ->
  (t, string) result
(** Bind, listen and return immediately; connections are served on
    background threads.  Also ignores [SIGPIPE] process-wide (a vanished
    peer must surface as [EPIPE], not kill the daemon). *)

val port : t -> int
(** The bound port — the ephemeral port when [config.port = 0]. *)

val metrics_port : t -> int option
(** The sidecar's bound port when [config.metrics_port] was set and the
    sidecar started; [None] otherwise. *)

val slow_trace_count : t -> int
(** Entries currently held in the slow-request ring (exposed for tests
    and [/healthz]). *)

val is_running : t -> bool

val stop : t -> unit
(** Graceful, idempotent shutdown: stop accepting, wake and drain the
    I/O loop, worker pool and connection threads, run the final [save].
    Safe to call from a signal-driven context. *)

val run : t -> unit
(** Block until {!stop} is called or SIGINT/SIGTERM arrives (handlers
    are installed for the duration of the call and restored after), then
    shut down gracefully. *)
