(** Multi-client TCP server for the ForkBase service verbs.

    Thread-per-connection over one shared {!Fb_core.Forkbase.t}: every
    {!Fb_core.Service.dispatch} runs under a coarse per-instance lock, so
    concurrent clients serialize at the verb level and the single-threaded
    engine underneath never sees parallelism (the scaling story is many
    connections with short verbs, not parallel storage access).

    Robustness against bad peers: a per-connection read deadline covers
    the {e whole} frame (a byte-at-a-time writer cannot wedge its thread
    past the deadline), and frames above [max_frame] are refused before
    any allocation — both answer the peer with an error response, then
    close.

    Durability: an optional [save] callback (typically
    [Persistent.save ~fsync:true]) runs under the instance lock every
    [save_every_s] seconds and once more during {!stop}, so SIGTERM
    leaves an intact, fsynced branch table.

    Observability ({!Fb_obs}): counters [fb.net.connections],
    [fb.net.frames], [fb.net.errors] (protocol/transport),
    [fb.net.request_errors] (verbs answering [ERR]),
    [fb.net.save_errors]; gauge [fb.net.connections_active]; per-verb
    latency histograms [fb.net.<verb>_seconds] (lock wait included —
    that is the latency a client observes). *)

type config = {
  host : string;          (** bind address; default ["127.0.0.1"] *)
  port : int;             (** [0] picks an ephemeral port — see {!port} *)
  backlog : int;
  max_frame : int;
  read_timeout_s : float; (** per-frame read deadline; [<= 0.] disables *)
  save_every_s : float;   (** periodic save cadence; [<= 0.] disables *)
  default_user : string;  (** applied when a request carries no user *)
}

val default_config : config
(** [127.0.0.1:7447], backlog 64, {!Frame.default_max_frame}, 30 s read
    timeout, save every 5 s, user ["anonymous"]. *)

type t

val start :
  ?config:config -> ?save:(unit -> unit) -> Fb_core.Forkbase.t ->
  (t, string) result
(** Bind, listen and return immediately; connections are served on
    background threads.  Also ignores [SIGPIPE] process-wide (a vanished
    peer must surface as [EPIPE], not kill the daemon). *)

val port : t -> int
(** The bound port — the ephemeral port when [config.port = 0]. *)

val is_running : t -> bool

val stop : t -> unit
(** Graceful, idempotent shutdown: stop accepting, wake and drain
    connection threads, run the final [save].  Safe to call from a
    signal-driven context. *)

val run : t -> unit
(** Block until {!stop} is called or SIGINT/SIGTERM arrives (handlers
    are installed for the duration of the call and restored after), then
    shut down gracefully. *)
