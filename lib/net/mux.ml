module Errors = Fb_core.Errors
module Obs = Fb_obs.Obs

type error = Client.error =
  | Remote of Errors.t
  | Transport of string

type callback = Frame.trace option -> Frame.event -> unit

type slot = Pending | Done of (Frame.response, error) result

type t = {
  fd : Unix.file_descr;
  user : string;
  max_frame : int;
  timeout_s : float option;  (* bounds sends; receives block on the reader *)
  mu : Mutex.t;              (* pending / subs / lifecycle state *)
  cond : Condition.t;
  wr_mu : Mutex.t;           (* serializes frame writes across threads *)
  pending : (int, slot ref) Hashtbl.t;
  (* seq -> callback to install the moment the subscribe reply lands;
     installing on the reader thread (before it reads the next frame)
     closes the race where an event for a fresh subscription beats the
     caller's return from [subscribe]. *)
  sub_installs : (int, callback) Hashtbl.t;
  sub_cbs : (int, callback) Hashtbl.t;  (* sub id -> live callback *)
  mutable next_seq : int;
  mutable closed : bool;
  mutable poison_reason : string;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Kill the connection: every waiter (current and future) gets [reason]
   as a [Transport] error, callbacks stop firing.  Idempotent — the
   first reason wins.  The fd is only {e shut down} here, never closed:
   the reader thread may be blocked in (or about to call) [read], and
   closing out from under it would let the fd number be recycled and the
   reader steal bytes from an unrelated connection.  Shutdown wakes the
   reader with EOF; the reader closes the fd as it exits. *)
let poison t reason =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        t.poison_reason <- reason;
        Hashtbl.iter
          (fun _ slot ->
            match !slot with
            | Pending -> slot := Done (Error (Transport reason))
            | Done _ -> ())
          t.pending;
        Hashtbl.reset t.sub_cbs;
        Hashtbl.reset t.sub_installs;
        Condition.broadcast t.cond;
        shutdown_quiet t.fd
      end)

let is_open t = Mutex.protect t.mu (fun () -> not t.closed)
let close t = poison t "connection closed"

(* Complete the slot for [seq] on the reader thread.  A reply carrying a
   sequence id we never issued means the stream is not ours to trust any
   more: poison. *)
let complete t seq result =
  let unknown =
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.pending seq with
        | None -> true
        | Some slot ->
          (match Hashtbl.find_opt t.sub_installs seq with
           | Some cb ->
             Hashtbl.remove t.sub_installs seq;
             (match result with
              | Ok (Frame.One (Ok payload)) -> (
                match int_of_string_opt payload with
                | Some sid -> Hashtbl.replace t.sub_cbs sid cb
                | None -> ())
              | _ -> ())
           | None -> ());
          slot := Done result;
          Condition.broadcast t.cond;
          false)
  in
  if unknown then
    poison t (Printf.sprintf "reply to unknown sequence id %d" seq)

let deliver_event t trace (ev : Frame.event) =
  let cb = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.sub_cbs ev.sub_id) in
  match cb with
  | None -> ()  (* unsubscribe raced a push already in flight: drop *)
  | Some cb -> ( try cb trace ev with _ -> ())

let reader_loop t () =
  let rec loop () =
    match Frame.read_frame ~max_frame:t.max_frame t.fd with
    | Ok payload -> (
      match Frame.decode_response payload with
      | Ok (_, Some seq, resp) ->
        complete t seq (Ok resp);
        if is_open t then loop ()
      | Ok (trace, None, Frame.Event ev) ->
        deliver_event t trace ev;
        loop ()
      | Ok (_, None, Frame.One (Error e)) ->
        (* The server answers without a sequence id only when it could
           not decode our request — nothing on this stream can be
           attributed any more. *)
        poison t ("server rejected request: " ^ Errors.to_string e)
      | Ok (_, None, _) -> poison t "untagged reply on pipelined connection"
      | Error e -> poison t ("bad response frame: " ^ e))
    | Error Frame.Eof -> poison t "connection closed by server"
    | Error e -> poison t (Frame.error_to_string e)
    | exception Unix.Unix_error (err, _, _) ->
      poison t (Unix.error_message err)
  in
  loop ();
  close_quiet t.fd

let connect ?host ?port ?(user = "anonymous")
    ?(max_frame = Frame.default_max_frame) ?(timeout_s = 30.0) () =
  match Client.dial ?host ?port ~timeout_s () with
  | Error e -> Error e
  | Ok fd ->
    let t =
      { fd; user; max_frame;
        timeout_s = (if timeout_s > 0.0 then Some timeout_s else None);
        mu = Mutex.create (); cond = Condition.create ();
        wr_mu = Mutex.create (); pending = Hashtbl.create 16;
        sub_installs = Hashtbl.create 4; sub_cbs = Hashtbl.create 4;
        next_seq = 1; closed = false; poison_reason = "connection closed" }
    in
    ignore (Thread.create (reader_loop t) ());
    Ok t

let current_trace () =
  Option.map
    (fun (c : Obs.context) ->
      { Frame.trace_id = c.trace_id; parent_span = c.span_id })
    (Obs.current_context ())

type ticket = int

(* Register the pending slot before the frame leaves, so the reply can
   never arrive unclaimed; serialize the write itself under [wr_mu] so
   concurrent senders cannot interleave frame bytes. *)
let send ?user ?install t req =
  let user = Option.value user ~default:t.user in
  let registered =
    Mutex.protect t.mu (fun () ->
        if t.closed then Error (Transport t.poison_reason)
        else begin
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          Hashtbl.replace t.pending seq (ref Pending);
          (match install with
           | Some cb -> Hashtbl.replace t.sub_installs seq cb
           | None -> ());
          Ok seq
        end)
  in
  match registered with
  | Error _ as e -> e
  | Ok seq -> (
    let wire = Frame.encode_request ~user ?trace:(current_trace ()) ~seq req in
    match
      Mutex.protect t.wr_mu (fun () ->
          Frame.write_frame ?timeout_s:t.timeout_s t.fd wire)
    with
    | Ok () -> Ok seq
    | Error e ->
      poison t (Frame.error_to_string e);
      Error (Transport (Frame.error_to_string e))
    | exception Unix.Unix_error (err, _, _) ->
      poison t (Unix.error_message err);
      Error (Transport (Unix.error_message err)))

let await t ticket =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.pending ticket with
      | None -> Error (Transport "unknown ticket")
      | Some slot ->
        let rec wait () =
          match !slot with
          | Done res ->
            Hashtbl.remove t.pending ticket;
            res
          | Pending ->
            (* poison fills every pending slot before waking us, so a
               Pending slot always means "still in flight". *)
            Condition.wait t.cond t.mu;
            wait ()
        in
        wait ())

let request ?user t tokens =
  let verb = match tokens with v :: _ -> String.lowercase_ascii v | [] -> "" in
  Obs.with_span ~attrs:[ ("verb", verb) ] "net.client.request" (fun () ->
      match send ?user t (Frame.Single tokens) with
      | Error _ as e -> e
      | Ok tk -> (
        match await t tk with
        | Error _ as e -> e
        | Ok (Frame.One (Ok payload)) -> Ok payload
        | Ok (Frame.One (Error e)) -> Error (Remote e)
        | Ok (Frame.Many _ | Frame.Event _) ->
          let msg = "mismatched reply shape for a single request" in
          poison t msg;
          Error (Transport msg)))

let batch ?user t reqs =
  Obs.with_span
    ~attrs:[ ("n", string_of_int (List.length reqs)) ]
    "net.client.batch"
    (fun () ->
      match send ?user t (Frame.Batch reqs) with
      | Error _ as e -> e
      | Ok tk -> (
        match await t tk with
        | Error _ as e -> e
        | Ok (Frame.Many replies) when List.length replies = List.length reqs
          ->
          Ok replies
        | Ok _ ->
          let msg = "mismatched reply shape for a batch request" in
          poison t msg;
          Error (Transport msg)))

let subscribe ?user ?(key = "*") ?(branch = "*") t cb =
  match send ?user ~install:cb t (Frame.Single [ "subscribe"; key; branch ]) with
  | Error _ as e -> e
  | Ok tk -> (
    match await t tk with
    | Error _ as e -> e
    | Ok (Frame.One (Ok payload)) -> (
      match int_of_string_opt payload with
      | Some sid -> Ok sid
      | None ->
        let msg = "unparsable subscription id: " ^ payload in
        poison t msg;
        Error (Transport msg))
    | Ok (Frame.One (Error e)) -> Error (Remote e)
    | Ok _ ->
      let msg = "mismatched reply shape for subscribe" in
      poison t msg;
      Error (Transport msg))

let unsubscribe ?user t sid =
  (* Drop the local callback first so deliveries stop immediately; any
     push already in flight hits the unknown-sub drop path. *)
  Mutex.protect t.mu (fun () -> Hashtbl.remove t.sub_cbs sid);
  match request ?user t [ "unsubscribe"; string_of_int sid ] with
  | Ok _ -> Ok ()
  | Error _ as e -> e
