(** Blocking TCP client for the ForkBase network service.

    One connection, one outstanding request at a time (the protocol is
    strict request/response).  Transport and server-side failures both
    come back as [Error] strings; the connection is marked dead after a
    transport failure and every later call fails fast. *)

type t

val connect :
  ?host:string ->
  ?port:int ->
  ?user:string ->
  ?max_frame:int ->
  ?timeout_s:float ->
  unit ->
  (t, string) result
(** Defaults: host ["127.0.0.1"], port [7447], user ["anonymous"]
    (sent with every request; the server applies it to access control
    and authorship), [max_frame] {!Frame.default_max_frame}, [timeout_s]
    [30.] per response ([0.] or negative disables). *)

val request : ?user:string -> t -> string list -> (string, string) result
(** [request t (verb :: args)] — one round trip.  [Ok payload] on
    success; [Error] carries the server's rendered error (missing key,
    permission, conflict, …) or a transport diagnostic. *)

val request_line : ?user:string -> t -> string -> (string, string) result
(** Tokenize a {!Fb_core.Service}-style request line client-side (quotes
    group, [""] is an empty argument), then {!request}. *)

val is_open : t -> bool

val close : t -> unit
(** Idempotent. *)
