(** Blocking TCP client for the ForkBase network service (wire layer).

    One connection, one outstanding request at a time (the protocol is
    strict request/response).  Server-side failures come back as
    [Remote] carrying the same typed {!Fb_core.Errors.t} a local caller
    would get; transport failures come back as [Transport] and poison
    the connection (every later call fails fast).  Most applications
    want the {!Remote} module on top, which mirrors the typed
    {!Fb_core.Forkbase} surface; this layer is the escape hatch for raw
    verbs and the REPL.

    When observability is enabled, every {!request}/{!batch} runs inside
    a [net.client.request]/[net.client.batch] span and stamps the frame
    with the calling thread's trace context ({!Frame.trace}), so the
    server's spans for this request join the caller's trace.  With
    [FB_OBS=0] no header is sent. *)

type error =
  | Remote of Fb_core.Errors.t  (** the verb failed server-side *)
  | Transport of string         (** socket/framing failure; connection dead *)

val error_to_string : error -> string
(** Rendering for the CLI edge. *)

type t

val dial :
  ?host:string ->
  ?port:int ->
  ?timeout_s:float ->
  unit ->
  (Unix.file_descr, error) result
(** The deadline-bounded TCP dial underneath {!connect} — resolve,
    non-blocking connect bounded by [timeout_s], [TCP_NODELAY]; on any
    failure the socket fd is closed before the error is returned.
    Exposed so {!Mux} shares the exact same dial policy. *)

val connect :
  ?host:string ->
  ?port:int ->
  ?user:string ->
  ?max_frame:int ->
  ?timeout_s:float ->
  unit ->
  (t, error) result
(** Defaults: host ["127.0.0.1"], port [7447], user ["anonymous"]
    (sent with every request; the server applies it to access control
    and authorship), [max_frame] {!Frame.default_max_frame}, [timeout_s]
    [30.] ([<= 0.] disables).  The timeout bounds the TCP connect
    itself and every later send/receive — one deadline policy for the
    whole connection ({!Frame.deadline_of_timeout}).  On any failure
    (resolve, connect, deadline, socket options) the socket fd is
    closed before the error is returned — no descriptor leaks. *)

val request : ?user:string -> t -> string list -> (string, error) result
(** [request t (verb :: args)] — one round trip.  [Ok payload] on
    success; [Error (Remote e)] carries the server's typed error
    (missing key, permission, conflict, …). *)

val batch :
  ?user:string -> t -> string list list -> (Frame.reply list, error) result
(** One frame carrying N sub-requests, answered by N in-order replies —
    executed server-side under a single lock acquisition.  Sub-request
    failures are per-reply ([Error] entries in the returned list) and do
    not abort the rest of the batch; only transport-level failures
    return [Error] at the outer level. *)

val request_line : ?user:string -> t -> string -> (string, error) result
(** Tokenize a {!Fb_core.Service}-style request line client-side (quotes
    group, [""] is an empty argument), then {!request}. *)

val is_open : t -> bool

val close : t -> unit
(** Idempotent. *)
