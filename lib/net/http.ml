(* Minimal HTTP/1.0 sidecar for scrape endpoints (/metrics, /healthz,
   /tracez, /trace.json).  Deliberately tiny: GET only, one response per
   connection, Connection: close — exactly what curl and a Prometheus
   scraper need, and nothing a request smuggler can play with.  Runs its
   own accept thread; each connection is handled on a short-lived thread
   with a hard header deadline so a wedged scraper cannot block the
   next one. *)

type reply = { status : int; content_type : string; body : string }

type handler = string -> reply option

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  handler : handler;
  state : Mutex.t;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

let header_deadline_s = 5.0
let max_header_bytes = 8192

let contains_blank_line s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then false
    else if s.[i] = '\n' && (s.[i + 1] = '\n' || (i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'))
    then true
    else go (i + 1)
  in
  go 0

(* Read until the blank line ending the request head (we never read a
   body: GET only), bounded in bytes and time. *)
let read_head fd =
  let deadline = Frame.deadline_of_timeout (Some header_deadline_s) in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > max_header_bytes then None
    else
      let s = Buffer.contents buf in
      if contains_blank_line s then Some s
      else
        match Frame.wait_readable fd deadline with
        | Error _ -> None
        | Ok () -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error _ -> None)
  in
  go ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let send fd reply =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       reply.status (status_text reply.status) reply.content_type
       (String.length reply.body) reply.body)

let text body = { status = 200; content_type = "text/plain; charset=utf-8"; body }
let json body = { status = 200; content_type = "application/json"; body }

let not_found =
  { status = 404; content_type = "text/plain; charset=utf-8";
    body = "not found\n" }

let handle_conn handler fd =
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      match read_head fd with
      | None -> ()
      | Some head ->
        let line =
          match String.index_opt head '\n' with
          | Some i -> String.trim (String.sub head 0 i)
          | None -> String.trim head
        in
        let reply =
          match String.split_on_char ' ' line with
          | [ "GET"; target; _version ] ->
            (* Route on the bare path: query strings are accepted and
               ignored, fragments don't reach servers. *)
            let path =
              match String.index_opt target '?' with
              | Some i -> String.sub target 0 i
              | None -> target
            in
            Option.value (handler path) ~default:not_found
          | "GET" :: _ | [] | [ _ ] ->
            { status = 400; content_type = "text/plain; charset=utf-8";
              body = "bad request\n" }
          | _ ->
            { status = 405; content_type = "text/plain; charset=utf-8";
              body = "method not allowed\n" }
        in
        send fd reply)

let is_running t = Mutex.protect t.state (fun () -> t.running)

let accept_loop t =
  let rec go () =
    if is_running t then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        ignore (Thread.create (fun () -> handle_conn t.handler fd) ());
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
  in
  go ()

let port t = t.bound_port

let start ?(host = "127.0.0.1") ~port handler =
  match Frame.resolve_host host with
  | Error e -> Error e
  | Ok addr -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port));
         Unix.listen fd 16
       with e ->
         close_quiet fd;
         raise e);
      fd
    with
    | fd ->
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let t =
        { listen_fd = fd; bound_port; handler; state = Mutex.create ();
          running = true; accept_thread = None }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "metrics listen %s:%d: %s" host port
           (Unix.error_message err)))

let stop t =
  let was_running =
    Mutex.protect t.state (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    close_quiet t.listen_fd;
    match t.accept_thread with Some th -> Thread.join th | None -> ()
  end
