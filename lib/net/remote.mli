(** Typed remote handle — the {!Fb_core.Forkbase} surface over a socket.

    Every operation mirrors its local counterpart and returns the same
    [('a, Fb_core.Errors.t) result]: a missing key is
    [Error (Key_not_found _)] whether the instance is in-process or
    behind TCP.  Transport failures (refused connection, timeout, torn
    frame) surface as [Error (Transient "network: …")] — transient
    because retrying against a healthy server is the correct reaction,
    and so existing retry helpers treat them like any other transient
    storage fault.

    Values travel in their service rendering (strings, CSV for tables,
    [k=v] lines for maps); version uids are parsed back into
    {!Fb_core.Forkbase.uid} before they reach the caller.  String
    rendering of errors stays at the CLI edge ({!Fb_core.Errors.to_string}).

    One handle wraps one {!Mux} connection, so concurrent calls from
    several threads pipeline over a single socket.  When the transport
    dies {e underneath} the handle (server restart, torn connection),
    the next read-classified operation performs one transparent
    reconnect with the original dial parameters and retries; mutating
    operations are never replayed (the write may have been applied
    before the tear — replaying could double-apply) and surface
    [Transient] directly.  After an explicit {!close}, every call fails
    fast with [Transient] — no reconnect.  Subscriptions {e do} survive
    a reconnect: a monitor thread re-dials while any subscription is
    live, re-issues the registrations on the fresh connection, and
    delivers a {!sub_event.Gap} marker so the caller knows pushes may
    have been missed in between.

    [?user] defaults to the user given at {!connect}. *)

type uid = Fb_core.Forkbase.uid

type t

val connect :
  ?host:string ->
  ?port:int ->
  ?user:string ->
  ?max_frame:int ->
  ?timeout_s:float ->
  unit ->
  (t, Fb_core.Errors.t) result
(** Same defaults as {!Client.connect}. *)

val close : t -> unit
val is_open : t -> bool

(** {1 The Forkbase mirror}

    [branch]/[from_branch] default to ["master"] like the local API. *)

val put :
  ?user:string -> ?branch:string -> t -> key:string -> string ->
  (uid, Fb_core.Errors.t) result

val put_csv :
  ?user:string -> ?branch:string -> t -> key:string -> string ->
  (uid, Fb_core.Errors.t) result

val get :
  ?user:string -> ?branch:string -> t -> key:string ->
  (string, Fb_core.Errors.t) result
(** The value in its service rendering. *)

val get_at : ?user:string -> t -> uid -> (string, Fb_core.Errors.t) result

val head :
  ?user:string -> ?branch:string -> t -> key:string ->
  (uid, Fb_core.Errors.t) result

val latest :
  ?user:string -> t -> key:string ->
  ((string * uid) list, Fb_core.Errors.t) result
(** All branch heads of a key, like {!Fb_core.Forkbase.latest}. *)

val list_keys : ?user:string -> t -> (string list, Fb_core.Errors.t) result

val log :
  ?user:string -> ?branch:string -> t -> key:string ->
  (string list, Fb_core.Errors.t) result
(** One rendered line per version, newest first: [uid seq author message]. *)

val meta : ?user:string -> t -> uid -> (string, Fb_core.Errors.t) result
(** Rendered version metadata (key, seq, author, message, bases). *)

val fork :
  ?user:string -> ?from_branch:string -> t -> key:string ->
  new_branch:string -> (uid, Fb_core.Errors.t) result

val rename_branch :
  ?user:string -> t -> key:string -> from_branch:string -> to_branch:string ->
  (unit, Fb_core.Errors.t) result

val merge :
  ?user:string -> t -> key:string -> into:string -> from_branch:string ->
  (uid, Fb_core.Errors.t) result

val diff :
  ?user:string -> t -> key:string -> branch1:string -> branch2:string ->
  (string, Fb_core.Errors.t) result
(** Rendered diff summary + entries. *)

val verify :
  ?user:string -> ?branch:string -> t -> key:string ->
  (string, Fb_core.Errors.t) result

val prove :
  ?user:string -> ?branch:string -> t -> key:string -> entry_key:string ->
  (string, Fb_core.Errors.t) result
(** Hex-encoded entry proof for offline verification. *)

val stat : ?user:string -> t -> (string, Fb_core.Errors.t) result
val metrics : ?user:string -> t -> (string, Fb_core.Errors.t) result

(** {1 Subscriptions}

    The server-side counterpart of {!Fb_core.Forkbase.watch}, pushed
    over the wire: SUBSCRIBE registers a branch-head watch on an
    event-mode {!Server}, and every matching head movement — whoever
    caused it — arrives as a {!Fb_core.Forkbase.head_event} with heads
    parsed back to uids.  Callbacks run on the connection's reader
    thread (keep them quick; never call back into the same handle), and
    run inside a [net.client.event] span joined to the {e writer's}
    trace when the mutating request was traced — the same trace id the
    server's /tracez and [forkbase top] show for the write. *)

type subscription
(** A local handle, stable across reconnects (the server-side id it maps
    to changes when a subscription is resurrected). *)

type sub_event =
  | Head_moved of Fb_core.Forkbase.head_event
    (** A branch head moved on the server. *)
  | Gap of { resubscribed : bool }
    (** The connection died and was re-dialed: pushes may have been
        missed.  [resubscribed = true] means deliveries resume on the
        new connection; [false] means re-registration failed (e.g. the
        server came back in threaded mode) and the monitor will try
        again on the next reconnect.  Callers that must not miss a
        movement should re-read the heads they track on [Gap]. *)

val subscribe :
  ?user:string -> ?key:string -> ?branch:string ->
  t -> (Fb_core.Forkbase.head_event -> unit) ->
  (subscription, Fb_core.Errors.t) result
(** [key]/[branch] omitted (or ["*"]) match everything.  A threaded-mode
    server answers [Error (Invalid _)].  Gap markers are dropped; use
    {!subscribe_events} to observe them. *)

val subscribe_events :
  ?user:string -> ?key:string -> ?branch:string ->
  t -> (sub_event -> unit) ->
  (subscription, Fb_core.Errors.t) result
(** Like {!subscribe} but the callback also receives {!sub_event.Gap}
    markers around reconnects. *)

val unsubscribe :
  ?user:string -> t -> subscription -> (unit, Fb_core.Errors.t) result
(** Local deliveries stop immediately; the server registration is torn
    down before returning.  Idempotent. *)

(** {1 Batching}

    N operations in one frame, executed server-side under a single lock
    acquisition and answered in order — round-trip and locking
    amortization.  Per-operation failures are entries in the returned
    list and do not abort the rest of the batch. *)

type op_req =
  | Put of { key : string; branch : string; value : string }
  | Get of { key : string; branch : string }
  | Head of { key : string; branch : string }

type op_reply =
  | Uid of uid      (** for [Put] and [Head] *)
  | Value of string (** for [Get] *)

val batch :
  ?user:string -> t -> op_req list ->
  ((op_reply, Fb_core.Errors.t) result list, Fb_core.Errors.t) result

(** {1 Delta sync (PUSH/PULL)}

    Merkle-DAG replication between a local {!Fb_core.Forkbase.t} and the
    server: exchange branch heads, walk the version DAG and POS-Tree
    from the newer head probing which chunks the other side already has
    (a held chunk roots a shared subtree — descent stops there), and
    ship only the missing frontier in BATCH frames.  Both directions
    re-hash every chunk that crosses the wire and refuse mismatches; the
    receiving side stores child-first and finally fast-forwards the
    branch head atomically, so an aborted or tampered transfer leaves it
    unchanged.  Non-fast-forward histories are refused — sync to a side
    branch and {!merge}. *)

val push :
  ?user:string -> ?branch:string -> t -> Fb_core.Forkbase.t -> key:string ->
  (uid * Fb_core.Sync.stats, Fb_core.Errors.t) result
(** Replicate [key]/[branch] from the local instance {e to} the server;
    returns the advanced head and what moved. *)

val pull :
  ?user:string -> ?branch:string -> t -> Fb_core.Forkbase.t -> key:string ->
  (uid * Fb_core.Sync.stats, Fb_core.Errors.t) result
(** Replicate [key]/[branch] from the server {e into} the local
    instance.  Nothing reaches the local store until the complete
    missing closure has been fetched and verified. *)

(** {1 Remote chunk backend}

    The inverse adapter: a server viewed as one more {!Fb_chunk.Store.t},
    so anything that composes stores (above all {!Fb_chunk.Cluster_store})
    treats a networked node exactly like a local engine. *)

val chunk_store : ?user:string -> t -> Fb_chunk.Store.t
(** Chunk operations over the wire: [put] rides the idempotent
    [chunk-put] verb (verified ingest without the closure check — a
    cluster member holds an arbitrary slice of the graph), [get]/
    [get_raw]/[peek] ride [sync-get], [mem] rides [sync-have], and
    [stats] merges this handle's own traffic counters with the member's
    [chunk-stat] physical shape (an unreachable member reports zero
    shape rather than failing the poll).

    Error mapping: transport failures and server-side [Transient] raise
    {!Fb_chunk.Store.Transient} (retry/failover territory); every other
    typed error is permanent and raises [Failure] with the rendered
    reason.  Every read is re-hashed against the requested id
    ({!Fb_chunk.Verified_store}), so a lying server cannot serve forged
    bytes — a mismatch reads as absent and the caller fails over.

    Unsupported over the wire: [iter] and [delete] raise [Failure]
    (never a silent no-op) — physical enumeration and GC belong to the
    member node; composites must skip members whose stores refuse them.
    The needed grants are instance-wide ([key pattern "*"]): [Read] for
    gets/membership, [Write] for [chunk-put]. *)

(** {1 Escape hatch} *)

val raw :
  ?user:string -> t -> string list -> (string, Fb_core.Errors.t) result
(** Any service verb, tokens as {!Fb_core.Service.dispatch} takes them. *)

val raw_line :
  ?user:string -> t -> string -> (string, Fb_core.Errors.t) result
(** Tokenize a service line client-side, then {!raw} — the REPL path. *)

val batch_raw :
  ?user:string -> t -> string list list ->
  (Frame.reply list, Fb_core.Errors.t) result
