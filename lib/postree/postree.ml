module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module Rolling = Fb_hash.Rolling
module Obs = Fb_obs.Obs

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

module type ENTRY = Postree_intf.ENTRY
module type S = Postree_intf.S

module Make (E : ENTRY) = struct
  type entry = E.t
  type key = E.key
  type t = { store : Store.t; root : Hash.t option }

  type edit = Put of E.t | Remove of E.key

  type change =
    | Added of E.t
    | Removed of E.t
    | Modified of E.t * E.t

  let change_key = function
    | Added e | Removed e | Modified (e, _) -> E.key e

  let params = Rolling.default_node_params
  let max_node_bytes = 16 * (1 lsl params.q)

  (* Trace span names, computed once per instantiation so the hot paths
     only pay a pointer pass when tracing is on. *)
  let kind_label = Chunk.kind_to_string E.leaf_kind
  let span_build = "postree.build(" ^ kind_label ^ ")"
  let span_update = "postree.update(" ^ kind_label ^ ")"
  let span_find = "postree.find(" ^ kind_label ^ ")"
  let span_diff = "postree.diff(" ^ kind_label ^ ")"
  let span_merge = "postree.merge(" ^ kind_label ^ ")"

  (* ---------------- node encoding ---------------- *)

  type index_entry = { split : E.key; child : Hash.t; count : int }

  type node = Leaf of E.t list | Index of index_entry list

  let encode_entry e = Codec.to_string E.encode e

  let encode_index_entry w ie =
    E.encode_key w ie.split;
    Codec.hash w ie.child;
    Codec.varint w ie.count

  let decode_index_entry r =
    let split = E.decode_key r in
    let child = Codec.read_hash r in
    let count = Codec.read_varint r in
    { split; child; count }

  let leaf_chunk entries =
    let w = Codec.writer () in
    Codec.varint w (List.length entries);
    List.iter (E.encode w) entries;
    Chunk.v E.leaf_kind (Codec.contents w)

  let index_chunk ies =
    let w = Codec.writer () in
    Codec.varint w (List.length ies);
    List.iter (encode_index_entry w) ies;
    Chunk.v Chunk.Index (Codec.contents w)

  let decode_node chunk =
    match chunk.Chunk.kind with
    | k when Chunk.equal_kind k E.leaf_kind ->
      (match Codec.of_string (fun r -> Codec.read_list r E.decode)
               chunk.Chunk.payload with
       | Ok entries -> Leaf entries
       | Error e -> corrupt "leaf decode: %s" e)
    | Chunk.Index ->
      (match Codec.of_string (fun r -> Codec.read_list r decode_index_entry)
               chunk.Chunk.payload with
       | Ok ies -> Index ies
       | Error e -> corrupt "index decode: %s" e)
    | k ->
      corrupt "unexpected chunk kind %s (wanted %s or index)"
        (Chunk.kind_to_string k)
        (Chunk.kind_to_string E.leaf_kind)

  (* One decoded-node cache per entry type (functor instantiation), shared
     by every tree of that type.  Containment is by chunk identity, so
     trees over different stores can share it safely: [find_live] only
     serves entries still present in the asking store. *)
  let node_cache : node Node_cache.t =
    Node_cache.create ~name:("postree." ^ kind_label)

  let read_node store h =
    match Node_cache.find_live node_cache store h with
    | Some node -> node
    | None ->
      (match Store.get store h with
       | None -> corrupt "missing chunk %s" (Hash.to_hex h)
       | Some chunk ->
         let node = decode_node chunk in
         Node_cache.add node_cache h node;
         node)

  (* ---------------- construction ---------------- *)

  let empty store = { store; root = None }
  let of_root store root = { store; root }
  let store t = t.store
  let root t = t.root
  let is_empty t = t.root = None

  let last_exn = function
    | [] -> invalid_arg "last_exn"
    | l -> List.nth l (List.length l - 1)

  (* Chunk a level's items into nodes; return one index entry per node. *)
  let chunk_level ~mk_chunk ~encode_item ~split_of ~count_of store items =
    let out = ref [] in
    let emit items =
      let chunk = mk_chunk items in
      let id = Store.put store chunk in
      let count = List.fold_left (fun a it -> a + count_of it) 0 items in
      out := { split = split_of (last_exn items); child = id; count } :: !out
    in
    let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
    List.iter (fun it -> Chunker.add ch it (encode_item it)) items;
    Chunker.finish ch;
    List.rev !out

  let chunk_leaf_level store entries =
    chunk_level ~mk_chunk:leaf_chunk ~encode_item:encode_entry
      ~split_of:E.key ~count_of:(fun _ -> 1) store entries

  let chunk_index_level store ies =
    chunk_level ~mk_chunk:index_chunk
      ~encode_item:(fun ie -> Codec.to_string encode_index_entry ie)
      ~split_of:(fun ie -> ie.split)
      ~count_of:(fun ie -> ie.count)
      store ies

  (* Collapse rows upward until a single node remains. *)
  let rec build_up store row =
    match row with
    | [] -> None
    | [ ie ] -> Some ie.child
    | _ -> build_up store (chunk_index_level store row)

  let sort_dedup_entries entries =
    (* Stable sort + last-wins on duplicate keys. *)
    let sorted =
      List.stable_sort (fun a b -> E.compare_key (E.key a) (E.key b)) entries
    in
    let rec dedup = function
      | a :: (b :: _ as rest) when E.compare_key (E.key a) (E.key b) = 0 ->
        dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted

  let build store entries =
    Obs.with_span span_build @@ fun () ->
    let entries = sort_dedup_entries entries in
    { store; root = build_up store (chunk_leaf_level store entries) }

  let build_sorted_seq store seq =
    Obs.with_span span_build @@ fun () ->
    let out = ref [] in
    let emit items =
      let chunk = leaf_chunk items in
      let id = Store.put store chunk in
      out :=
        { split = E.key (last_exn items); child = id;
          count = List.length items }
        :: !out
    in
    let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
    let prev = ref None in
    Seq.iter
      (fun e ->
        let k = E.key e in
        (match !prev with
         | Some p when E.compare_key p k >= 0 ->
           invalid_arg "build_sorted_seq: keys not strictly increasing"
         | _ -> ());
        prev := Some k;
        Chunker.add ch e (encode_entry e))
      seq;
    Chunker.finish ch;
    { store; root = build_up store (List.rev !out) }

  (* ---------------- accessors ---------------- *)

  let cardinal t =
    match t.root with
    | None -> 0
    | Some h -> (
      match read_node t.store h with
      | Leaf entries -> List.length entries
      | Index ies -> List.fold_left (fun a ie -> a + ie.count) 0 ies)

  let height t =
    let rec go h acc =
      match read_node t.store h with
      | Leaf _ -> acc + 1
      | Index ies -> (
        match ies with
        | [] -> corrupt "empty index node %s" (Hash.to_hex h)
        | ie :: _ -> go ie.child (acc + 1))
    in
    match t.root with None -> 0 | Some h -> go h 0

  (* First index entry whose split key is >= k, B+-tree descent. *)
  let rec find_in store h k =
    match read_node store h with
    | Leaf entries ->
      List.find_opt (fun e -> E.compare_key (E.key e) k = 0) entries
    | Index ies -> (
      match List.find_opt (fun ie -> E.compare_key k ie.split <= 0) ies with
      | None -> None
      | Some ie -> find_in store ie.child k)

  let find t k =
    match t.root with
    | None -> None
    | Some h -> Obs.with_span span_find (fun () -> find_in t.store h k)

  let mem t k = find t k <> None

  let rec iter_node store f h =
    match read_node store h with
    | Leaf entries -> List.iter f entries
    | Index ies -> List.iter (fun ie -> iter_node store f ie.child) ies

  let iter f t =
    match t.root with None -> () | Some h -> iter_node t.store f h

  let fold f acc t =
    let acc = ref acc in
    iter (fun e -> acc := f !acc e) t;
    !acc

  let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

  let to_seq t =
    (* Explicit stack of pending nodes; chunks are only read on demand. *)
    let rec nodes_seq stack () =
      match stack with
      | [] -> Seq.Nil
      | h :: rest -> (
        match read_node t.store h with
        | Leaf entries -> entries_seq entries rest ()
        | Index ies ->
          nodes_seq (List.map (fun ie -> ie.child) ies @ rest) ())
    and entries_seq entries stack () =
      match entries with
      | [] -> nodes_seq stack ()
      | e :: rest -> Seq.Cons (e, entries_seq rest stack)
    in
    match t.root with None -> Seq.empty | Some h -> nodes_seq [ h ]

  (* ---------------- range queries ----------------

     A child pointed to by index entry [ie] holds keys in the half-open
     range (previous sibling's split, ie.split]; the walk prunes children
     disjoint from [lo, hi] and, for counting, credits fully-covered
     children from their stored counts without reading them. *)

  let ge_lo lo k =
    match lo with None -> true | Some l -> E.compare_key k l >= 0

  let le_hi hi k =
    match hi with None -> true | Some h -> E.compare_key k h <= 0

  let iter_range ?lo ?hi f t =
    let rec go h =
      match read_node t.store h with
      | Leaf entries ->
        List.iter
          (fun e ->
            let k = E.key e in
            if ge_lo lo k && le_hi hi k then f e)
          entries
      | Index ies ->
        let rec walk prev = function
          | [] -> ()
          | ie :: rest ->
            let below_lo =
              match lo with
              | Some l -> E.compare_key ie.split l < 0
              | None -> false
            in
            let above_hi =
              match hi, prev with
              | Some h, Some p -> E.compare_key p h >= 0
              | _ -> false
            in
            if not (below_lo || above_hi) then go ie.child;
            walk (Some ie.split) rest
        in
        walk None ies
    in
    match t.root with None -> () | Some h -> go h

  let fold_range ?lo ?hi f acc t =
    let acc = ref acc in
    iter_range ?lo ?hi (fun e -> acc := f !acc e) t;
    !acc

  let to_list_range ?lo ?hi t =
    List.rev (fold_range ?lo ?hi (fun acc e -> e :: acc) [] t)

  let count_range ?lo ?hi t =
    let rec go h =
      match read_node t.store h with
      | Leaf entries ->
        List.fold_left
          (fun acc e ->
            let k = E.key e in
            if ge_lo lo k && le_hi hi k then acc + 1 else acc)
          0 entries
      | Index ies ->
        let rec walk prev acc = function
          | [] -> acc
          | ie :: rest ->
            let below_lo =
              match lo with
              | Some l -> E.compare_key ie.split l < 0
              | None -> false
            in
            let above_hi =
              match hi, prev with
              | Some h, Some p -> E.compare_key p h >= 0
              | _ -> false
            in
            let acc =
              if below_lo || above_hi then acc
              else begin
                (* Fully covered: min key > prev >= lo and max = split <= hi. *)
                let lo_covered =
                  match lo, prev with
                  | None, _ -> true
                  | Some l, Some p -> E.compare_key p l >= 0
                  | Some _, None -> false
                in
                if lo_covered && le_hi hi ie.split then acc + ie.count
                else acc + go ie.child
              end
            in
            walk (Some ie.split) acc rest
        in
        walk None 0 ies
    in
    match t.root with None -> 0 | Some h -> go h

  let nth t n =
    if n < 0 then None
    else
      let rec go h n =
        match read_node t.store h with
        | Leaf entries -> List.nth_opt entries n
        | Index ies ->
          let rec pick n = function
            | [] -> None
            | ie :: rest ->
              if n < ie.count then go ie.child n else pick (n - ie.count) rest
          in
          pick n ies
      in
      match t.root with None -> None | Some h -> go h n

  let min_entry t =
    let rec go h =
      match read_node t.store h with
      | Leaf [] -> None
      | Leaf (e :: _) -> Some e
      | Index [] -> None
      | Index (ie :: _) -> go ie.child
    in
    match t.root with None -> None | Some h -> go h

  let max_entry t =
    let rec go h =
      match read_node t.store h with
      | Leaf [] -> None
      | Leaf entries -> Some (last_exn entries)
      | Index [] -> None
      | Index ies -> go (last_exn ies).child
    in
    match t.root with None -> None | Some h -> go h

  (* ---------------- leaf row ---------------- *)

  (* The leaf level as index entries (split key, child id, count).  For a
     single-leaf tree we synthesize the index entry. *)
  let leaf_row t =
    let rec rows h =
      match read_node t.store h with
      | Leaf entries ->
        (* Only reachable when the root itself is a leaf. *)
        (match entries with
         | [] -> []
         | _ ->
           [ { split = E.key (last_exn entries); child = h;
               count = List.length entries } ])
      | Index ies -> (
        match ies with
        | [] -> []
        | first :: _ -> (
          match read_node t.store first.child with
          | Leaf _ -> ies
          | Index _ -> List.concat_map (fun ie -> rows ie.child) ies))
    in
    match t.root with None -> [] | Some h -> rows h

  let leaf_entries t h =
    match read_node t.store h with
    | Leaf entries -> entries
    | Index _ -> corrupt "expected leaf at %s" (Hash.to_hex h)

  (* ---------------- update ---------------- *)

  let edit_key = function Put e -> E.key e | Remove k -> k

  let sort_dedup_edits edits =
    let sorted =
      List.stable_sort (fun a b -> E.compare_key (edit_key a) (edit_key b))
        edits
    in
    let rec dedup = function
      | a :: (b :: _ as rest)
        when E.compare_key (edit_key a) (edit_key b) = 0 ->
        dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup sorted

  let update t edits =
    let edits = sort_dedup_edits edits in
    if edits = [] then t
    else
      Obs.with_span span_update @@ fun () ->
      match t.root with
      | None ->
        let entries =
          List.filter_map (function Put e -> Some e | Remove _ -> None) edits
        in
        build t.store entries
      | Some _ ->
        let row = leaf_row t in
        (* The new leaf row is assembled left to right; untouched original
           leaves are passed through by reference, leaves overlapping an
           edit cluster are re-chunked, and chunking continues after each
           cluster only until a node boundary re-synchronizes with the
           original layout.  The result is bit-identical to a full rebuild
           over the edited record set. *)
        let out = ref [] in
        let reuse ie = out := ie :: !out in
        let emit items =
          let chunk = leaf_chunk items in
          let id = Store.put t.store chunk in
          out :=
            { split = E.key (last_exn items); child = id;
              count = List.length items }
            :: !out
        in
        let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
        let add_entry e = Chunker.add ch e (encode_entry e) in
        (* Reuse whole leaves strictly before the one containing [k]; a key
           beyond every split targets the last leaf (appends coalesce into
           it, since only the level-last node may end without a pattern). *)
        let rec skip_to k leaves =
          match leaves with
          | [] -> []
          | [ last ] -> [ last ]
          | ie :: rest ->
            if E.compare_key ie.split k < 0 then (reuse ie; skip_to k rest)
            else leaves
        in
        let rec go leaves cur edits =
          match edits, cur with
          | [], [] ->
            if Chunker.pending ch then (
              match leaves with
              | [] -> Chunker.finish ch
              | l :: ls -> go ls (leaf_entries t l.child) [])
            else
              (* Re-synchronized: everything left is reused verbatim. *)
              List.iter reuse leaves
          | [], e :: cur' ->
            add_entry e;
            go leaves cur' []
          | ed :: _, [] when not (Chunker.pending ch) -> (
            (* At a clean boundary with edits pending: skip ahead to the
               next affected leaf without re-chunking the gap. *)
            match skip_to (edit_key ed) leaves with
            | [] ->
              (match ed with Put e -> add_entry e | Remove _ -> ());
              go [] [] (List.tl edits)
            | l :: ls -> go ls (leaf_entries t l.child) edits)
          | ed :: eds, [] -> (
            match leaves with
            | [] ->
              (match ed with Put e -> add_entry e | Remove _ -> ());
              go [] [] eds
            | l :: ls -> go ls (leaf_entries t l.child) edits)
          | ed :: eds, e :: cur' ->
            let c = E.compare_key (E.key e) (edit_key ed) in
            if c < 0 then (add_entry e; go leaves cur' edits)
            else if c = 0 then begin
              (match ed with Put x -> add_entry x | Remove _ -> ());
              go leaves cur' eds
            end
            else begin
              (match ed with Put x -> add_entry x | Remove _ -> ());
              go leaves cur eds
            end
        in
        go row [] edits;
        { t with root = build_up t.store (List.rev !out) }

  let insert t e = update t [ Put e ]
  let remove t k = update t [ Remove k ]

  (* ---------------- diff ---------------- *)

  let rec entries_of_hash store h acc =
    match read_node store h with
    | Leaf entries -> List.rev_append entries acc
    | Index ies ->
      List.fold_left (fun acc ie -> entries_of_hash store ie.child acc) acc
        ies

  let subtree_entries store hs =
    List.rev
      (List.fold_left (fun acc h -> entries_of_hash store h acc) [] hs)

  (* Merge-walk two sorted entry lists; [acc] is built in reverse. *)
  let diff_entries l1 l2 acc =
    let rec go l1 l2 acc =
      match l1, l2 with
      | [], [] -> acc
      | e1 :: r1, [] -> go r1 [] (Removed e1 :: acc)
      | [], e2 :: r2 -> go [] r2 (Added e2 :: acc)
      | e1 :: r1, e2 :: r2 ->
        let c = E.compare_key (E.key e1) (E.key e2) in
        if c < 0 then go r1 l2 (Removed e1 :: acc)
        else if c > 0 then go l1 r2 (Added e2 :: acc)
        else if E.equal e1 e2 then go r1 r2 acc
        else go r1 r2 (Modified (e1, e2) :: acc)
    in
    go l1 l2 acc

  (* Diff recursion works on (node, height) pairs at a {e common} height.
     Two logically-close trees can still differ in total height (index-level
     chunking can collapse or add a level), so the taller side's upper
     structure — always a handful of small nodes — is first expanded into
     the row of sub-tree pointers at the shorter side's root height. *)

  (* Entries [levels] below node [h]; [levels >= 1] and [h] is an index
     node at least [levels] deep. *)
  let rec row_below store h levels =
    match read_node store h with
    | Leaf _ -> corrupt "row_below: unexpected leaf at %s" (Hash.to_hex h)
    | Index ies ->
      if levels = 1 then ies
      else List.concat_map (fun ie -> row_below store ie.child (levels - 1)) ies

  let node_height store h =
    let rec go h acc =
      match read_node store h with
      | Leaf _ -> acc
      | Index [] -> corrupt "empty index node %s" (Hash.to_hex h)
      | Index (ie :: _) -> go ie.child (acc + 1)
    in
    go h 1

  let rec diff_nodes store h1 h2 height acc =
    if Hash.equal h1 h2 then acc
    else
      match read_node store h1, read_node store h2 with
      | Leaf e1, Leaf e2 -> diff_entries e1 e2 acc
      | Index i1, Index i2 -> diff_rows store i1 i2 (height - 1) acc
      | Leaf e1, Index _ ->
        diff_entries e1 (subtree_entries store [ h2 ]) acc
      | Index _, Leaf e2 ->
        diff_entries (subtree_entries store [ h1 ]) e2 acc

  (* Walk two rows of index entries (pointing to sub-trees of [height]) by
     split key.  Children that align on the same split key are recursed into
     (and pruned when ids are equal); boundary-shifted spans are flattened
     and compared entry-wise.  Thanks to structural invariance such spans
     only appear next to actual differences, so the walk skips identical
     regions wholesale. *)
  and diff_rows store i1 i2 height acc =
    let flush span1 span2 acc =
      match span1, span2 with
      | [], [] -> acc
      | [ a ], [ b ] ->
        (* A lone realigned pair keeps recursing instead of flattening. *)
        diff_nodes store a.child b.child height acc
      | _ when height > 1 ->
        (* Boundary-shifted index spans: expand one level and realign —
           the shift is local, so the next level prunes again. *)
        let expand span =
          List.concat_map
            (fun ie ->
              match read_node store ie.child with
              | Index ies -> ies
              | Leaf _ ->
                corrupt "diff: leaf at height %d under %s" height
                  (Hash.to_hex ie.child))
            (List.rev span)
        in
        diff_rows store (expand span1) (expand span2) (height - 1) acc
      | _ ->
        (* Leaf-level spans: compare the actual entries. *)
        let hs l = List.rev_map (fun ie -> ie.child) l in
        diff_entries
          (subtree_entries store (hs span1))
          (subtree_entries store (hs span2))
          acc
    in
    let rec walk l1 l2 span1 span2 acc =
      match l1, l2 with
      | [], [] -> flush span1 span2 acc
      | e1 :: r1, [] -> walk r1 [] (e1 :: span1) span2 acc
      | [], e2 :: r2 -> walk [] r2 span1 (e2 :: span2) acc
      | e1 :: r1, e2 :: r2 ->
        let c = E.compare_key e1.split e2.split in
        if c = 0 then
          let acc = flush (e1 :: span1) (e2 :: span2) acc in
          walk r1 r2 [] [] acc
        else if c < 0 then walk r1 l2 (e1 :: span1) span2 acc
        else walk l1 r2 span1 (e2 :: span2) acc
    in
    walk i1 i2 [] [] acc

  let diff t1 t2 =
    Obs.with_span span_diff @@ fun () ->
    let acc =
      match t1.root, t2.root with
      | None, None -> []
      | Some h1, None ->
        List.rev_map (fun e -> Removed e) (subtree_entries t1.store [ h1 ])
      | None, Some h2 ->
        List.rev_map (fun e -> Added e) (subtree_entries t2.store [ h2 ])
      | Some h1, Some h2 ->
        if Hash.equal h1 h2 then []
        else begin
          let ht1 = node_height t1.store h1
          and ht2 = node_height t2.store h2 in
          if ht1 = ht2 then diff_nodes t1.store h1 h2 ht1 []
          else begin
            (* Expand both sides to the rows one level below the shorter
               root: that is the first level where content-defined
               boundaries realign, so pruning applies again. *)
            let target = max 1 (min ht1 ht2 - 1) in
            let row_of h ht =
              if ht = target then
                (* Only when the shorter tree is a single leaf. *)
                let split =
                  match read_node t1.store h with
                  | Leaf es -> E.key (last_exn es)
                  | Index ies -> (last_exn ies).split
                in
                [ { split; child = h; count = 0 } ]
              else row_below t1.store h (ht - target)
            in
            diff_rows t1.store (row_of h1 ht1) (row_of h2 ht2) target []
          end
        end
    in
    List.rev acc

  let edit_of_change = function
    | Added e -> Put e
    | Removed e -> Remove (E.key e)
    | Modified (_, e2) -> Put e2

  (* ---------------- merge ---------------- *)

  type conflict = {
    key : E.key;
    base : E.t option;
    ours : edit;
    theirs : edit;
  }

  type resolver = conflict -> edit option

  let resolve_ours c = Some c.ours
  let resolve_theirs c = Some c.theirs

  let equal_edit a b =
    match a, b with
    | Put x, Put y -> E.equal x y
    | Remove _, Remove _ -> true
    | Put _, Remove _ | Remove _, Put _ -> false

  let merge ?(on_conflict = fun _ -> None) ~base ~ours ~theirs () =
    Obs.with_span span_merge @@ fun () ->
    let da = List.map edit_of_change (diff base ours) in
    let db = List.map edit_of_change (diff base theirs) in
    (* Both lists are key-sorted; walk them to find overlapping keys. *)
    let rec go da db to_apply conflicts =
      match da, db with
      | _, [] -> (to_apply, conflicts)
      | [], e :: rest -> go [] rest (e :: to_apply) conflicts
      | a :: ra, b :: rb ->
        let c = E.compare_key (edit_key a) (edit_key b) in
        if c < 0 then go ra db to_apply conflicts
        else if c > 0 then go da rb (b :: to_apply) conflicts
        else if equal_edit a b then go ra rb to_apply conflicts
        else
          let key = edit_key a in
          let conflict = { key; base = find base key; ours = a; theirs = b } in
          (match on_conflict conflict with
           | Some e -> go ra rb (e :: to_apply) conflicts
           | None -> go ra rb to_apply (conflict :: conflicts))
    in
    let to_apply, conflicts = go da db [] [] in
    if conflicts <> [] then Error (List.rev conflicts)
    else Ok (update ours (List.rev to_apply))

  (* ---------------- Merkle proofs ---------------- *)

  type proof = string list

  (* Routing is deterministic from node content: the first child whose
     split key is >= the target, else the last child (which also hosts
     absence proofs for keys beyond the key space). *)
  let route ies k =
    match List.find_opt (fun ie -> E.compare_key k ie.split <= 0) ies with
    | Some ie -> ie
    | None -> last_exn ies

  let prove t k =
    match t.root with
    | None -> Error "cannot prove against an empty tree"
    | Some root ->
      let rec go h acc =
        match t.store.Store.get_raw h with
        | None -> Error (Printf.sprintf "missing chunk %s" (Hash.to_hex h))
        | Some raw -> (
          let acc = raw :: acc in
          match Store.get t.store h with
          | None -> Error "undecodable chunk"
          | Some chunk -> (
            match decode_node chunk with
            | Leaf _ -> Ok (List.rev acc)
            | Index [] -> Error "empty index node"
            | Index ies -> go (route ies k).child acc
            | exception Corrupt m -> Error m))
      in
      go root []

  let verify_proof ~root k proof =
    let decode raw =
      match Chunk.decode raw with
      | Error e -> Error e
      | Ok chunk -> (
        match decode_node chunk with
        | node -> Ok node
        | exception Corrupt m -> Error m)
    in
    let rec walk expected = function
      | [] -> Error "proof: truncated path"
      | raw :: rest ->
        if not (Hash.equal (Hash.of_string raw) expected) then
          Error "proof: chunk does not hash to the id its parent names"
        else (
          match decode raw with
          | Error e -> Error ("proof: " ^ e)
          | Ok (Leaf entries) ->
            if rest <> [] then Error "proof: trailing chunks after leaf"
            else
              Ok
                (List.find_opt (fun e -> E.compare_key (E.key e) k = 0)
                   entries)
          | Ok (Index []) -> Error "proof: empty index node"
          | Ok (Index ies) -> walk (route ies k).child rest)
    in
    walk root proof

  (* ---------------- introspection ---------------- *)

  type node_stats = {
    levels : int;
    nodes_per_level : int list;
    bytes_per_level : int list;
    leaf_entries : int;
    leaf_node_sizes : int list;
  }

  let chunk_of_hash store h =
    match Store.get store h with
    | Some c -> c
    | None -> corrupt "missing chunk %s" (Hash.to_hex h)

  let node_stats t =
    match t.root with
    | None ->
      { levels = 0; nodes_per_level = []; bytes_per_level = [];
        leaf_entries = 0; leaf_node_sizes = [] }
    | Some h ->
      let rec go level_hashes (nodes, bytes, sizes_acc, entries_acc) =
        let chunks = List.map (chunk_of_hash t.store) level_hashes in
        let level_bytes =
          List.fold_left (fun a c -> a + Chunk.encoded_size c) 0 chunks
        in
        let nodes = List.length level_hashes :: nodes in
        let bytes = level_bytes :: bytes in
        match decode_node (List.hd chunks) with
        | Leaf _ ->
          let sizes = List.map Chunk.encoded_size chunks in
          let entries =
            List.fold_left
              (fun a c ->
                match decode_node c with
                | Leaf es -> a + List.length es
                | Index _ -> a)
              0 chunks
          in
          (List.rev nodes, List.rev bytes, sizes, entries + entries_acc)
        | Index _ ->
          let children =
            List.concat_map
              (fun c ->
                match decode_node c with
                | Index ies -> List.map (fun ie -> ie.child) ies
                | Leaf _ -> [])
              chunks
          in
          go children (nodes, bytes, sizes_acc, entries_acc)
      in
      let nodes_per_level, bytes_per_level, leaf_node_sizes, leaf_entries =
        go [ h ] ([], [], [], 0)
      in
      { levels = List.length nodes_per_level;
        nodes_per_level;
        bytes_per_level;
        leaf_entries;
        leaf_node_sizes }

  let node_hashes t =
    let acc = ref [] in
    let rec go h =
      acc := h :: !acc;
      match read_node t.store h with
      | Leaf _ -> ()
      | Index ies -> List.iter (fun ie -> go ie.child) ies
    in
    (match t.root with None -> () | Some h -> go h);
    List.rev !acc

  let leaf_hashes t = List.map (fun ie -> ie.child) (leaf_row t)

  (* ---------------- validation ---------------- *)

  let validate t =
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    let check_chunk_integrity h =
      match t.store.Store.get_raw h with
      | None -> err "missing chunk %s" (Hash.to_hex h)
      | Some raw ->
        if not (Hash.equal (Hash.of_string raw) h) then
          err "chunk %s: stored bytes hash to %s (tampered)"
            (Hash.to_hex h)
            (Hash.to_hex (Hash.of_string raw))
        else
          (match Chunk.decode raw with
           | Error e -> err "chunk %s: %s" (Hash.to_hex h) e
           | Ok c -> Ok c)
    in
    let ( let* ) = Result.bind in
    (* Check one level: ids in order, with their items' encodings; verify
       sortedness, boundary justification, and collect children. *)
    let check_boundary ~is_last ~node_bytes items_encoded h =
      let rolling = Rolling.create params in
      let rec scan = function
        | [] -> Ok ()
        | [ last ] ->
          let hit = Rolling.feed_string rolling last in
          if hit || is_last || node_bytes >= max_node_bytes then Ok ()
          else
            err "node %s: no pattern at final entry and not level-last"
              (Hash.to_hex h)
        | enc :: rest ->
          if Rolling.feed_string rolling enc then
            err "node %s: pattern fires before final entry" (Hash.to_hex h)
          else scan rest
      in
      scan items_encoded
    in
    let rec check_level hashes ~expected_leaf_depth ~depth ~prev_key =
      match hashes with
      | [] -> Ok ()
      | _ ->
        let rec per_node hs prev_key children_acc =
          match hs with
          | [] -> Ok (List.rev children_acc, prev_key)
          | h :: rest ->
            let* chunk = check_chunk_integrity h in
            let node = try Ok (decode_node chunk) with Corrupt m -> Error m in
            let* node = node in
            let is_last = rest = [] in
            let node_bytes = Chunk.encoded_size chunk in
            (match node, expected_leaf_depth with
             | Leaf _, Some d when d <> depth ->
               err "leaf %s at depth %d, expected %d" (Hash.to_hex h) depth d
             | Leaf [], _ -> err "empty leaf %s" (Hash.to_hex h)
             | Leaf entries, _ ->
               let* () =
                 check_boundary ~is_last ~node_bytes
                   (List.map encode_entry entries) h
               in
               let* prev =
                 List.fold_left
                   (fun acc e ->
                     let* prev = acc in
                     let k = E.key e in
                     match prev with
                     | Some pk when E.compare_key pk k >= 0 ->
                       err "keys not strictly increasing at %a"
                         (fun () k -> Format.asprintf "%a" E.pp_key k) k
                     | _ -> Ok (Some k))
                   (Ok prev_key) entries
               in
               per_node rest prev children_acc
             | Index [], _ -> err "empty index node %s" (Hash.to_hex h)
             | Index ies, _ ->
               let* () =
                 check_boundary ~is_last ~node_bytes
                   (List.map (fun ie -> Codec.to_string encode_index_entry ie)
                      ies)
                   h
               in
               (* Split keys and counts are validated against children after
                  the whole level is assembled. *)
               per_node rest prev_key (List.rev_append ies children_acc))
        in
        let* children, _last = per_node hashes prev_key [] in
        (match children with
         | [] -> Ok () (* leaf level: done *)
         | ies ->
           (* Validate each child's count and split key. *)
           let* () =
             List.fold_left
               (fun acc ie ->
                 let* () = acc in
                 let* chunk = check_chunk_integrity ie.child in
                 let node =
                   try Ok (decode_node chunk) with Corrupt m -> Error m
                 in
                 let* node = node in
                 let count, max_key =
                   match node with
                   | Leaf es -> (List.length es, E.key (last_exn es))
                   | Index ces ->
                     ( List.fold_left (fun a c -> a + c.count) 0 ces,
                       (last_exn ces).split )
                 in
                 if count <> ie.count then
                   err "child %s: count %d, index says %d"
                     (Hash.to_hex ie.child) count ie.count
                 else if E.compare_key max_key ie.split <> 0 then
                   err "child %s: split key mismatch" (Hash.to_hex ie.child)
                 else Ok ())
               (Ok ()) ies
           in
           check_level
             (List.map (fun ie -> ie.child) ies)
             ~expected_leaf_depth ~depth:(depth + 1) ~prev_key)
    in
    match t.root with
    | None -> Ok ()
    | Some h ->
      (try
         let depth_of_leaves = height t in
         check_level [ h ] ~expected_leaf_depth:(Some depth_of_leaves)
           ~depth:1 ~prev_key:None
       with Corrupt m -> Error m)

  let pp fmt t =
    match t.root with
    | None -> Format.pp_print_string fmt "<empty pos-tree>"
    | Some h ->
      Format.fprintf fmt "<pos-tree root=%a entries=%d height=%d>" Hash.pp h
        (cardinal t) (height t)
end
