module Codec = Fb_codec.Codec
module Chunk = Fb_chunk.Chunk
module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash

type index_entry = { child : Hash.t; count : int }

let encode_index_entry w ie =
  Codec.hash w ie.child;
  Codec.varint w ie.count

let decode_index_entry r =
  let child = Codec.read_hash r in
  let count = Codec.read_varint r in
  { child; count }

let index_chunk ies =
  let w = Codec.writer () in
  Codec.varint w (List.length ies);
  List.iter (encode_index_entry w) ies;
  Chunk.v Chunk.Seq_index (Codec.contents w)

let decode_index chunk =
  match chunk.Chunk.kind with
  | Chunk.Seq_index ->
    Codec.of_string (fun r -> Codec.read_list r decode_index_entry)
      chunk.Chunk.payload
  | k ->
    Error
      (Printf.sprintf "expected seq-index chunk, got %s"
         (Chunk.kind_to_string k))

(* Sequence trees (list/blob) cache the chunk value itself: decoding the
   payload is cheap per kind, but [Store.get] re-parses and copies the
   encoded bytes on every call. *)
let chunk_cache : Chunk.t Node_cache.t = Node_cache.create ~name:"seqtree"

let read_chunk store h =
  match Node_cache.find_live chunk_cache store h with
  | Some c -> c
  | None ->
    (match Store.get store h with
     | Some c ->
       Node_cache.add chunk_cache h c;
       c
     | None -> raise (Postree.Corrupt ("missing chunk " ^ Hash.to_hex h)))

let decode_index_exn chunk =
  match decode_index chunk with
  | Ok ies -> ies
  | Error e -> raise (Postree.Corrupt e)

let params = Fb_hash.Rolling.default_node_params
let max_node_bytes = 16 * (1 lsl params.q)

let chunk_index_level store ies =
  let out = ref [] in
  let emit items =
    let chunk = index_chunk items in
    let id = Store.put store chunk in
    let count = List.fold_left (fun a ie -> a + ie.count) 0 items in
    out := { child = id; count } :: !out
  in
  let ch = Chunker.create ~params ~max_bytes:max_node_bytes ~emit () in
  List.iter
    (fun ie -> Chunker.add ch ie (Codec.to_string encode_index_entry ie))
    ies;
  Chunker.finish ch;
  List.rev !out

let rec build_up store row =
  match row with
  | [] -> None
  | [ ie ] -> Some ie.child
  | _ -> build_up store (chunk_index_level store row)

let leaf_row store root ~leaf_count =
  let rec rows h =
    let chunk = read_chunk store h in
    match chunk.Chunk.kind with
    | Chunk.Seq_index -> (
      let ies = decode_index_exn chunk in
      match ies with
      | [] -> []
      | first :: _ ->
        let first_chunk = read_chunk store first.child in
        (match first_chunk.Chunk.kind with
         | Chunk.Seq_index -> List.concat_map (fun ie -> rows ie.child) ies
         | _ -> ies))
    | _ -> [ { child = h; count = leaf_count chunk } ]
  in
  match root with None -> [] | Some h -> rows h

let total_count store root ~leaf_count =
  match root with
  | None -> 0
  | Some h -> (
    let chunk = read_chunk store h in
    match chunk.Chunk.kind with
    | Chunk.Seq_index ->
      List.fold_left (fun a ie -> a + ie.count) 0 (decode_index_exn chunk)
    | _ -> leaf_count chunk)
