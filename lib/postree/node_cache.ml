module Hash = Fb_hash.Hash
module Store = Fb_chunk.Store
module Obs = Fb_obs.Obs

(* Capacity policy: FB_NODE_CACHE sets the per-cache entry budget for the
   whole process (0 disables caching); benches override it at run time via
   [set_capacity_all]. *)
let default_capacity =
  match Sys.getenv_opt "FB_NODE_CACHE" with
  | Some s -> (match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 1024)
  | None -> 1024

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

type 'a node = {
  id : Hash.t;
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

(* Read-only verbs of the network service share one cache from many
   threads, and a cache {e read} mutates the recency list — so every
   entry point runs under [lock].  The store liveness probe in
   [find_live] (possibly a stat syscall) deliberately happens outside
   the critical section. *)
type 'a t = {
  name : string;
  lock : Mutex.t;
  mutable capacity : int;
  tbl : 'a node Hash.Tbl.t;
  mutable head : 'a node option;  (* most recent *)
  mutable tail : 'a node option;  (* least recent *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

(* Heterogeneous registry (as capacity-setter closures) so benches can turn
   every cache off/on without naming each instantiation. *)
let registry : (int -> unit) list ref = ref []

let unlink t n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> t.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> ());
  t.head <- Some n;
  if t.tail = None then t.tail <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let drop t id =
  match Hash.Tbl.find_opt t.tbl id with
  | None -> ()
  | Some n ->
    unlink t n;
    Hash.Tbl.remove t.tbl id

let invalidate_locked t id =
  if Hash.Tbl.mem t.tbl id then begin
    drop t id;
    t.invalidations <- t.invalidations + 1
  end

let invalidate t id =
  Mutex.protect t.lock (fun () -> invalidate_locked t id)

let clear t =
  Mutex.protect t.lock (fun () ->
      Hash.Tbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)

let set_capacity t cap =
  if cap < 0 then invalid_arg "Node_cache.set_capacity";
  Mutex.protect t.lock (fun () ->
      t.capacity <- cap;
      (* Shrinking (or disabling) evicts from the cold end. *)
      let continue = ref (Hash.Tbl.length t.tbl > cap) in
      while !continue do
        (match t.tail with
         | None ->
           Hash.Tbl.reset t.tbl;
           t.head <- None;
           t.tail <- None
         | Some n ->
           unlink t n;
           Hash.Tbl.remove t.tbl n.id;
           t.evictions <- t.evictions + 1);
        continue := Hash.Tbl.length t.tbl > cap
      done)

let set_capacity_all cap = List.iter (fun f -> f cap) !registry

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        size = Hash.Tbl.length t.tbl })

let create ~name =
  let t =
    { name;
      lock = Mutex.create ();
      capacity = default_capacity;
      tbl = Hash.Tbl.create 512;
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      invalidations = 0 }
  in
  registry := (fun cap -> set_capacity t cap) :: !registry;
  (* Deletions anywhere (GC sweep, scrub quarantine) must not leave a
     decodable ghost behind. *)
  Store.on_delete (fun id -> invalidate t id);
  let g suffix f = Obs.gauge ("node_cache." ^ name ^ "." ^ suffix) f in
  g "hits" (fun () -> float_of_int t.hits);
  g "misses" (fun () -> float_of_int t.misses);
  g "size" (fun () -> float_of_int (Hash.Tbl.length t.tbl));
  g "hit_ratio" (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total);
  t

let add t id value =
  Mutex.protect t.lock (fun () ->
      if t.capacity > 0 && not (Hash.Tbl.mem t.tbl id) then begin
        let n = { id; value; prev = None; next = None } in
        Hash.Tbl.replace t.tbl id n;
        push_front t n;
        if Hash.Tbl.length t.tbl > t.capacity then
          match t.tail with
          | None -> ()
          | Some n ->
            unlink t n;
            Hash.Tbl.remove t.tbl n.id;
            t.evictions <- t.evictions + 1
      end)

let find_live t store id =
  let hit =
    Mutex.protect t.lock (fun () ->
        match Hash.Tbl.find_opt t.tbl id with
        | Some n -> Some n.value
        | None -> None)
  in
  match hit with
  | Some value when Store.mem store id ->
    (* The liveness probe keeps a hit cheap (hashtable/stat lookup) while
       guaranteeing we never serve a decode for a chunk the store no longer
       holds — even if its deletion bypassed [Store.delete]. *)
    Mutex.protect t.lock (fun () ->
        t.hits <- t.hits + 1;
        match Hash.Tbl.find_opt t.tbl id with
        | Some n -> touch t n
        | None -> ());
    Some value
  | Some _ ->
    Mutex.protect t.lock (fun () ->
        invalidate_locked t id;
        t.misses <- t.misses + 1);
    None
  | None ->
    Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
    None
