(** Decoded-node LRU cache, keyed by chunk identity.

    POS-Tree reads repeat: every lookup walks root → leaf, and the upper
    index nodes are shared by nearly all paths, so the same chunks are
    fetched and decoded over and over.  Content addressing makes the cache
    trivially coherent on the write side — a chunk's bytes never change
    under its hash — so the only staleness hazard is {e deletion} (GC
    sweep, scrub quarantine).  Two mechanisms close it:

    - every cache registers a {!Fb_chunk.Store.on_delete} hook, so
      deletions through [Store.delete] invalidate eagerly;
    - {!find_live} re-probes [Store.mem] on every hit, so even a deletion
      that bypassed the hook (raw backend access) can never be served from
      the cache.

    Capacity comes from the [FB_NODE_CACHE] environment variable (entries
    per cache, default 1024, [0] disables); benches flip all caches at once
    with {!set_capacity_all}.  Hit/miss/size/ratio are exported as Obs
    gauges named [node_cache.<name>.*]. *)

type 'a t

val default_capacity : int
(** Capacity new caches start with: [FB_NODE_CACHE] if set, else 1024. *)

val create : name:string -> 'a t
(** New cache registered under [node_cache.<name>] in the Obs registry and
    hooked into store deletions. *)

val find_live : 'a t -> Fb_chunk.Store.t -> Fb_hash.Hash.t -> 'a option
(** Cached value for a chunk id, provided the chunk is still present in
    [store]; a stale entry is dropped and reported as a miss. *)

val add : 'a t -> Fb_hash.Hash.t -> 'a -> unit
(** Remember a decoded value (no-op when disabled; evicts LRU when full). *)

val invalidate : 'a t -> Fb_hash.Hash.t -> unit
(** Drop one entry (idempotent). *)

val clear : 'a t -> unit
(** Drop everything (does not count as invalidations). *)

val set_capacity : 'a t -> int -> unit
(** Change capacity; shrinking evicts cold entries, [0] disables. *)

val set_capacity_all : int -> unit
(** {!set_capacity} on every cache in the process — bench on/off switch. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

val stats : 'a t -> stats
