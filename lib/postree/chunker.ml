(* Chunker counters surfaced through the Obs registry, which feeds the
   METRICS/METRICS-JSON service verbs and `forkbase metrics`. *)
let () =
  let g suffix f = Fb_obs.Obs.gauge ("chunker." ^ suffix) f in
  g "gamma_builds" (fun () ->
      float_of_int (Fb_hash.Rolling.stats ()).Fb_hash.Rolling.gamma_builds);
  g "gamma_memo_hits" (fun () ->
      float_of_int (Fb_hash.Rolling.stats ()).Fb_hash.Rolling.gamma_memo_hits);
  g "bytes_scanned" (fun () ->
      float_of_int (Fb_hash.Rolling.stats ()).Fb_hash.Rolling.bytes_scanned)

type 'a t = {
  rolling : Fb_hash.Rolling.t;
  max_bytes : int;
  emit : 'a list -> unit;
  mutable items : 'a list;      (* current node's items, reversed *)
  mutable bytes : int;          (* current node's byte size *)
}

let create ?(params = Fb_hash.Rolling.default_node_params) ?max_bytes ~emit ()
    =
  let max_bytes =
    match max_bytes with Some m -> m | None -> 16 * (1 lsl params.q)
  in
  if max_bytes < 1 then invalid_arg "Chunker.create: max_bytes must be >= 1";
  { rolling = Fb_hash.Rolling.create params;
    max_bytes;
    emit;
    items = [];
    bytes = 0 }

let boundary t =
  t.emit (List.rev t.items);
  t.items <- [];
  t.bytes <- 0;
  Fb_hash.Rolling.reset t.rolling

let add t item encoded =
  let hit = Fb_hash.Rolling.feed_string t.rolling encoded in
  t.items <- item :: t.items;
  t.bytes <- t.bytes + String.length encoded;
  if hit || t.bytes >= t.max_bytes then boundary t

let pending t = t.items <> []
let finish t = if pending t then boundary t
