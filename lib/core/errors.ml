type t =
  | Key_not_found of string
  | Branch_not_found of { key : string; branch : string }
  | Version_not_found of string
  | Permission_denied of { user : string; action : string }
  | Merge_conflict of { key : string; details : string list }
  | Type_mismatch of { expected : string; got : string }
  | Corrupt of string
  | Transient of string
  | Invalid of string

let to_string = function
  | Key_not_found k -> Printf.sprintf "key not found: %S" k
  | Branch_not_found { key; branch } ->
    Printf.sprintf "branch %S not found for key %S" branch key
  | Version_not_found v -> Printf.sprintf "version not found: %s" v
  | Permission_denied { user; action } ->
    Printf.sprintf "permission denied: user %S may not %s" user action
  | Merge_conflict { key; details } ->
    Printf.sprintf "merge conflict on key %S: %s" key
      (String.concat "; " details)
  | Type_mismatch { expected; got } ->
    Printf.sprintf "type mismatch: expected %s, got %s" expected got
  | Corrupt msg -> "integrity violation: " ^ msg
  | Transient msg -> "transient storage failure (retry): " ^ msg
  | Invalid msg -> "invalid request: " ^ msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

let invalid fmt = Printf.ksprintf (fun s -> Error (Invalid s)) fmt
let corrupt fmt = Printf.ksprintf (fun s -> Error (Corrupt s)) fmt
