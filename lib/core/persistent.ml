module Branch = Fb_repr.Branch

let ( let* ) = Result.bind

let branches_file root = Filename.concat root "BRANCHES"
let tags_file root = Filename.concat root "TAGS"

let read_table path =
  if not (Sys.file_exists path) then Ok (Branch.create ())
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | content -> (
      match Branch.deserialize content with
      | Ok t -> Ok t
      | Error e -> Errors.corrupt "%s: %s" path e)
    | exception Sys_error e -> Errors.corrupt "%s: %s" path e

let copy_table ~into src =
  List.iter
    (fun key ->
      List.iter
        (fun (branch, uid) -> Branch.set_head into ~key ~branch uid)
        (Branch.branches src ~key))
    (Branch.keys src)

(* Push directory metadata (the rename) to stable storage.  Best-effort:
   some filesystems refuse O_RDONLY opens of directories, and a failed
   directory sync only widens the crash window back to what it was. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_table ?(fsync = false) path table =
  match
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc (Branch.serialize table);
       (* The tmp bytes must be on stable storage before the rename
          publishes them, or a crash can promote a torn/empty table. *)
       if fsync then begin
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       end;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Sys_error e -> Errors.corrupt "writing %s: %s" path e
  | exception Unix.Unix_error (err, _, _) ->
    Errors.corrupt "writing %s: %s" path (Unix.error_message err)

let open_ ?acl ?fsync ~root () =
  match Fb_chunk.File_store.create ?fsync ~root:(Filename.concat root "chunks") () with
  | store ->
    (* Disk bytes are untrusted: verify each chunk the first time it is
       served so media damage is refused (and visible to scrub) instead of
       flowing out of the API as silently wrong data. *)
    let store, _violations = Fb_chunk.Verified_store.wrap ~once:true store in
    let store = Fb_chunk.Metered_store.wrap store in
    let fb = Forkbase.create ?acl store in
    let* branches = read_table (branches_file root) in
    copy_table ~into:(Forkbase.branch_table fb) branches;
    let* tags = read_table (tags_file root) in
    copy_table ~into:(Forkbase.tag_table fb) tags;
    Ok fb
  | exception Sys_error e -> Errors.corrupt "opening %s: %s" root e

let save ?fsync ~root fb =
  let* () = write_table ?fsync (branches_file root) (Forkbase.branch_table fb) in
  write_table ?fsync (tags_file root) (Forkbase.tag_table fb)

let with_instance ?acl ?fsync ~root f =
  let* fb = open_ ?acl ?fsync ~root () in
  let* result = f fb in
  let* () = save ?fsync ~root fb in
  Ok result
