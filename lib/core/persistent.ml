module Branch = Fb_repr.Branch

let ( let* ) = Result.bind

let branches_file root = Filename.concat root "BRANCHES"
let tags_file root = Filename.concat root "TAGS"

let read_table path =
  if not (Sys.file_exists path) then Ok (Branch.create ())
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | content -> (
      match Branch.deserialize content with
      | Ok t -> Ok t
      | Error e -> Errors.corrupt "%s: %s" path e)
    | exception Sys_error e -> Errors.corrupt "%s: %s" path e

let copy_table ~into src =
  List.iter
    (fun key ->
      List.iter
        (fun (branch, uid) -> Branch.set_head into ~key ~branch uid)
        (Branch.branches src ~key))
    (Branch.keys src)

let write_table path table =
  match
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc (Branch.serialize table);
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error e -> Errors.corrupt "writing %s: %s" path e

let open_ ?acl ?fsync ~root () =
  match Fb_chunk.File_store.create ?fsync ~root:(Filename.concat root "chunks") () with
  | store ->
    (* Disk bytes are untrusted: verify each chunk the first time it is
       served so media damage is refused (and visible to scrub) instead of
       flowing out of the API as silently wrong data. *)
    let store, _violations = Fb_chunk.Verified_store.wrap ~once:true store in
    let store = Fb_chunk.Metered_store.wrap store in
    let fb = Forkbase.create ?acl store in
    let* branches = read_table (branches_file root) in
    copy_table ~into:(Forkbase.branch_table fb) branches;
    let* tags = read_table (tags_file root) in
    copy_table ~into:(Forkbase.tag_table fb) tags;
    Ok fb
  | exception Sys_error e -> Errors.corrupt "opening %s: %s" root e

let save ~root fb =
  let* () = write_table (branches_file root) (Forkbase.branch_table fb) in
  write_table (tags_file root) (Forkbase.tag_table fb)

let with_instance ?acl ~root f =
  let* fb = open_ ?acl ~root () in
  let* result = f fb in
  let* () = save ~root fb in
  Ok result
