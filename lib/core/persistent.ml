module Branch = Fb_repr.Branch
module Log_store = Fb_chunk.Log_store

let ( let* ) = Result.bind

let branches_file root = Filename.concat root "BRANCHES"
let tags_file root = Filename.concat root "TAGS"
let log_dir root = Filename.concat root "log"
let chunks_dir root = Filename.concat root "chunks"

type backend = [ `Auto | `File | `Log ]

let is_dir p = Sys.file_exists p && Sys.is_directory p

(* An existing layout wins over the default: a root that already holds a
   log (or a chunk directory) keeps its engine, so upgrading the binary
   never strands old data.  Only a fresh root gets the log default. *)
let resolve_backend backend root =
  match backend with
  | (`File | `Log) as b -> b
  | `Auto ->
    if is_dir (log_dir root) then `Log
    else if is_dir (chunks_dir root) then `File
    else `Log

(* Live log engines by root.  [save] must acknowledge (fsync) appended
   chunks before it publishes a branch table referencing them, and the
   table writer only knows the root — so every open log registers here.
   A root can be opened more than once in-process (tests do); all its
   handles share one underlying file, so they are all synced. *)
let registry_lock = Mutex.create ()
let log_handles : (string, Log_store.t) Hashtbl.t = Hashtbl.create 7

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register root h = with_registry (fun () -> Hashtbl.add log_handles root h)

let unregister root h =
  with_registry (fun () ->
      let rest =
        List.filter (fun h' -> h' != h) (Hashtbl.find_all log_handles root)
      in
      while Hashtbl.mem log_handles root do
        Hashtbl.remove log_handles root
      done;
      List.iter (fun h' -> Hashtbl.add log_handles root h') (List.rev rest))

let handles_of root = with_registry (fun () -> Hashtbl.find_all log_handles root)

let log_handle ~root =
  match handles_of root with [] -> None | h :: _ -> Some h

(* A closed handle raises from [sync]; racing a concurrent [close] is
   fine — closing already performed the final sync. *)
let sync_logs root =
  List.iter (fun h -> try Log_store.sync h with Failure _ -> ()) (handles_of root)

(* Once the last handle of a root is gone, its [log.<dir>.*] gauges read
   a dead engine's final state forever — retire them.  Obs registration
   is last-writer-wins, so a reopen re-registers under the same names
   and simply takes them back. *)
let retire_gauges_if_last root =
  if handles_of root = [] then
    Fb_obs.Obs.unregister_gauges_prefix ("log." ^ log_dir root ^ ".")

let close ~root =
  let hs = handles_of root in
  with_registry (fun () ->
      while Hashtbl.mem log_handles root do
        Hashtbl.remove log_handles root
      done);
  List.iter (fun h -> try Log_store.close h with Failure _ -> ()) hs;
  retire_gauges_if_last root

let read_table path =
  if not (Sys.file_exists path) then Ok (Branch.create ())
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | content -> (
      match Branch.deserialize content with
      | Ok t -> Ok t
      | Error e -> Errors.corrupt "%s: %s" path e)
    | exception Sys_error e -> Errors.corrupt "%s: %s" path e

let copy_table ~into src =
  List.iter
    (fun key ->
      List.iter
        (fun (branch, uid) -> Branch.set_head into ~key ~branch uid)
        (Branch.branches src ~key))
    (Branch.keys src)

(* Push directory metadata (the rename) to stable storage.  Best-effort:
   some filesystems refuse O_RDONLY opens of directories, and a failed
   directory sync only widens the crash window back to what it was. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_table ?(fsync = false) path table =
  match
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc (Branch.serialize table);
       (* The tmp bytes must be on stable storage before the rename
          publishes them, or a crash can promote a torn/empty table. *)
       if fsync then begin
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       end;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Sys_error e -> Errors.corrupt "writing %s: %s" path e
  | exception Unix.Unix_error (err, _, _) ->
    Errors.corrupt "writing %s: %s" path (Unix.error_message err)

(* Returns the log handle alongside the instance so [with_instance] can
   close exactly what it opened. *)
let open_handle ?acl ?fsync ?(backend = `Auto) ?log_config ~root () =
  match
    let raw, handle =
      match resolve_backend backend root with
      | `File ->
        (Fb_chunk.File_store.create ?fsync ~root:(chunks_dir root) (), None)
      | `Log ->
        let config =
          let base =
            Option.value log_config ~default:Log_store.default_config
          in
          match fsync with
          | None -> base
          | Some f -> { base with Log_store.fsync = f }
        in
        let h = Log_store.create ~config ~root:(log_dir root) () in
        register root h;
        (Log_store.store h, Some h)
    in
    let finish () =
      (* Disk bytes are untrusted: verify each chunk the first time it is
         served so media damage is refused (and visible to scrub) instead
         of flowing out of the API as silently wrong data. *)
      let store, _violations = Fb_chunk.Verified_store.wrap ~once:true raw in
      let store = Fb_chunk.Metered_store.wrap store in
      let fb = Forkbase.create ?acl store in
      let* branches = read_table (branches_file root) in
      copy_table ~into:(Forkbase.branch_table fb) branches;
      let* tags = read_table (tags_file root) in
      copy_table ~into:(Forkbase.tag_table fb) tags;
      Ok fb
    in
    (match finish () with
    | Ok fb -> Ok (fb, handle)
    | Error _ as e ->
      (* Don't leak a registered engine for an instance that never
         existed (e.g. a corrupt branch table). *)
      (match handle with
      | Some h ->
        unregister root h;
        Log_store.close h;
        retire_gauges_if_last root
      | None -> ());
      e)
  with
  | r -> r
  | exception Sys_error e -> Errors.corrupt "opening %s: %s" root e
  | exception Failure e -> Errors.corrupt "opening %s: %s" root e

let open_ ?acl ?fsync ?backend ?log_config ~root () =
  let* fb, _handle = open_handle ?acl ?fsync ?backend ?log_config ~root () in
  Ok fb

let save ?fsync ~root fb =
  (* Acknowledge every appended chunk before publishing heads that
     reference them: a power cut after this save must never leave a table
     pointing into an unsynced log tail. *)
  sync_logs root;
  let* () = write_table ?fsync (branches_file root) (Forkbase.branch_table fb) in
  write_table ?fsync (tags_file root) (Forkbase.tag_table fb)

let with_instance ?acl ?fsync ?backend ?log_config ~root f =
  let* fb, handle = open_handle ?acl ?fsync ?backend ?log_config ~root () in
  Fun.protect
    ~finally:(fun () ->
      match handle with
      | Some h ->
        unregister root h;
        (try Log_store.close h with Failure _ -> ());
        retire_gauges_if_last root
      | None -> ())
    (fun () ->
      let* result = f fb in
      let* () = save ?fsync ~root fb in
      Ok result)
