module Branch = Fb_repr.Branch
module Provider = Fb_chunk.Store_provider

let ( let* ) = Result.bind

let branches_file root = Filename.concat root "BRANCHES"
let tags_file root = Filename.concat root "TAGS"
let log_dir root = Filename.concat root "log"

(* Live provider instances by root.  [save] must reach a durability
   barrier (the instance [sync] hook) before it publishes a branch table
   referencing freshly appended chunks, and the table writer only knows
   the root — so every open instance registers here.  A root can be
   opened more than once in-process (tests do); handles of one root
   share underlying storage, so all of them are synced. *)
let registry_lock = Mutex.create ()
let instances : (string, Provider.instance) Hashtbl.t = Hashtbl.create 7

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register root i = with_registry (fun () -> Hashtbl.add instances root i)

let unregister root i =
  with_registry (fun () ->
      let rest =
        List.filter (fun i' -> i' != i) (Hashtbl.find_all instances root)
      in
      while Hashtbl.mem instances root do
        Hashtbl.remove instances root
      done;
      List.iter (fun i' -> Hashtbl.add instances root i') (List.rev rest))

let instances_of root = with_registry (fun () -> Hashtbl.find_all instances root)

let log_handle ~root =
  List.find_map
    (fun (i : Provider.instance) ->
      match i.Provider.handle with
      | Some (Provider.Log_handle h) -> Some h
      | _ -> None)
    (instances_of root)

(* Providers promise [sync] is a durability barrier and tolerate racing
   a concurrent [close] — closing already performed the final sync. *)
let sync_instances root =
  List.iter (fun (i : Provider.instance) -> i.Provider.sync ()) (instances_of root)

(* Once the last instance of a root is gone, gauges owned by its engine
   (the log engine registers [log.<dir>.*]) read a dead engine's final
   state forever — retire them.  Obs registration is last-writer-wins,
   so a reopen re-registers under the same names and takes them back. *)
let retire_gauges_if_last root =
  if instances_of root = [] then
    Fb_obs.Obs.unregister_gauges_prefix ("log." ^ log_dir root ^ ".")

let close ~root =
  let is = instances_of root in
  with_registry (fun () ->
      while Hashtbl.mem instances root do
        Hashtbl.remove instances root
      done);
  List.iter (fun (i : Provider.instance) -> i.Provider.close ()) is;
  retire_gauges_if_last root

let read_table path =
  if not (Sys.file_exists path) then Ok (Branch.create ())
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | content -> (
      match Branch.deserialize content with
      | Ok t -> Ok t
      | Error e -> Errors.corrupt "%s: %s" path e)
    | exception Sys_error e -> Errors.corrupt "%s: %s" path e

let copy_table ~into src =
  List.iter
    (fun key ->
      List.iter
        (fun (branch, uid) -> Branch.set_head into ~key ~branch uid)
        (Branch.branches src ~key))
    (Branch.keys src)

(* Push directory metadata (the rename) to stable storage.  Best-effort:
   some filesystems refuse O_RDONLY opens of directories, and a failed
   directory sync only widens the crash window back to what it was. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_table ?(fsync = false) path table =
  match
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc (Branch.serialize table);
       (* The tmp bytes must be on stable storage before the rename
          publishes them, or a crash can promote a torn/empty table. *)
       if fsync then begin
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       end;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Sys_error e -> Errors.corrupt "writing %s: %s" path e
  | exception Unix.Unix_error (err, _, _) ->
    Errors.corrupt "writing %s: %s" path (Unix.error_message err)

(* Returns the provider instance alongside the Forkbase handle so
   [with_instance] can close exactly what it opened.  Backend names
   resolve through the provider registry: an unknown name is a typed
   [Invalid] listing what is registered; a provider that fails to open
   its storage is [Corrupt]. *)
let open_handle ?acl ?fsync ?(backend = "auto") ?log_config ?(params = [])
    ~root () =
  let* provider =
    match Provider.resolve ~backend ~root with
    | Ok p -> Ok p
    | Error msg -> Error (Errors.Invalid msg)
  in
  let config = Provider.config ?fsync ?log_config ~params ~root () in
  match
    let* instance =
      match provider.Provider.open_ config with
      | Ok i -> Ok i
      | Error msg -> Errors.corrupt "opening %s: %s" root msg
    in
    register root instance;
    let finish () =
      (* Stored bytes are untrusted: verify each chunk the first time it
         is served so media damage (or a lying remote member) is refused
         — and visible to scrub — instead of flowing out of the API as
         silently wrong data. *)
      let store, _violations =
        Fb_chunk.Verified_store.wrap ~once:true instance.Provider.store
      in
      let store = Fb_chunk.Metered_store.wrap store in
      let fb = Forkbase.create ?acl store in
      let* branches = read_table (branches_file root) in
      copy_table ~into:(Forkbase.branch_table fb) branches;
      let* tags = read_table (tags_file root) in
      copy_table ~into:(Forkbase.tag_table fb) tags;
      Ok fb
    in
    (match finish () with
    | Ok fb -> Ok (fb, instance)
    | Error _ as e ->
      (* Don't leak a registered engine for an instance that never
         existed (e.g. a corrupt branch table). *)
      unregister root instance;
      instance.Provider.close ();
      retire_gauges_if_last root;
      e)
  with
  | r -> r
  | exception Sys_error e -> Errors.corrupt "opening %s: %s" root e
  | exception Failure e -> Errors.corrupt "opening %s: %s" root e

let open_ ?acl ?fsync ?backend ?log_config ?params ~root () =
  let* fb, _instance =
    open_handle ?acl ?fsync ?backend ?log_config ?params ~root ()
  in
  Ok fb

let save ?fsync ~root fb =
  (* Acknowledge every appended chunk before publishing heads that
     reference them: a power cut after this save must never leave a table
     pointing into an unsynced log tail. *)
  sync_instances root;
  let* () = write_table ?fsync (branches_file root) (Forkbase.branch_table fb) in
  write_table ?fsync (tags_file root) (Forkbase.tag_table fb)

let with_instance ?acl ?fsync ?backend ?log_config ?params ~root f =
  let* fb, instance =
    open_handle ?acl ?fsync ?backend ?log_config ?params ~root ()
  in
  Fun.protect
    ~finally:(fun () ->
      unregister root instance;
      instance.Provider.close ();
      retire_gauges_if_last root)
    (fun () ->
      let* result = f fb in
      let* () = save ?fsync ~root fb in
      Ok result)
