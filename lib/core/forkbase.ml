module Store = Fb_chunk.Store
module Hash = Fb_hash.Hash
module Value = Fb_types.Value
module Table = Fb_types.Table
module Fnode = Fb_repr.Fnode
module Branch = Fb_repr.Branch
module Dag = Fb_repr.Dag
module Verify = Fb_repr.Verify
module Pmap = Fb_postree.Pmap
module Pset = Fb_postree.Pset
module Plist = Fb_postree.Plist
module Pblob = Fb_postree.Pblob
module Obs = Fb_obs.Obs

(* Operation-level latency histograms (the numbers the paper's Figs. 4-6
   quote distributions of) + a trace span per request, so one slow call
   decomposes into its chunk loads / tree walks below. *)
let h_put = Obs.histogram "fb.put_seconds"
let h_get = Obs.histogram "fb.get_seconds"
let h_merge = Obs.histogram "fb.merge_seconds"
let h_diff = Obs.histogram "fb.diff_seconds"

let timed h name f = Obs.time h (fun () -> Obs.with_span name f)

type uid = Hash.t

type head_event = {
  key : string;
  branch : string;
  new_head : uid;
  old_head : uid option;
}

type watch = int

type watcher = {
  id : int;
  key_filter : string option;
  branch_filter : string option;
  callback : head_event -> unit;
}

type t = {
  store : Store.t;
  branches : Branch.t;
  tags : Branch.t;   (* immutable name -> uid pointers, per key *)
  acl : Acl.t;
  (* Guards the watcher list and the deferral state below; callbacks
     themselves always run outside it. *)
  watch_lock : Mutex.t;
  mutable watchers : watcher list;
  mutable next_watch : int;
  mutable defer_depth : int;
  pending : head_event Queue.t;
}

let ( let* ) = Result.bind

(* Storage faults travel as exceptions below this layer —
   [Fb_chunk.Store.Transient] from the chunk store (retryable),
   [Postree.Corrupt] from tree traversal over damaged chunks.  Every
   store-touching entry point converts both into typed errors here, so
   nothing raises across the API boundary. *)
let guard f =
  try f () with
  | Store.Transient msg -> Error (Errors.Transient msg)
  | Fb_postree.Postree.Corrupt msg -> Error (Errors.Corrupt msg)

let create ?(acl = Acl.open_instance ()) store =
  { store; branches = Branch.create (); tags = Branch.create (); acl;
    watch_lock = Mutex.create (); watchers = []; next_watch = 0;
    defer_depth = 0; pending = Queue.create () }

let watch ?key ?branch t callback =
  Mutex.protect t.watch_lock (fun () ->
      let id = t.next_watch in
      t.next_watch <- id + 1;
      t.watchers <-
        { id; key_filter = key; branch_filter = branch; callback }
        :: t.watchers;
      id)

let unwatch t id =
  Mutex.protect t.watch_lock (fun () ->
      t.watchers <- List.filter (fun w -> w.id <> id) t.watchers)

let deliver_event t event =
  let watchers = Mutex.protect t.watch_lock (fun () -> t.watchers) in
  List.iter
    (fun w ->
      let matches filter v =
        match filter with None -> true | Some f -> String.equal f v
      in
      if matches w.key_filter event.key && matches w.branch_filter event.branch
      then try w.callback event with _ -> ())
    watchers

(* Every head movement in the engine funnels through here. *)
let move_head t ~key ~branch uid =
  let old_head = Branch.head t.branches ~key ~branch in
  Branch.set_head t.branches ~key ~branch uid;
  let event = { key; branch; new_head = uid; old_head } in
  let deferred =
    Mutex.protect t.watch_lock (fun () ->
        if t.defer_depth > 0 then begin
          Queue.add event t.pending;
          true
        end
        else false)
  in
  if not deferred then deliver_event t event

let with_deferred_watch t f =
  Mutex.protect t.watch_lock (fun () -> t.defer_depth <- t.defer_depth + 1);
  let finish () =
    Mutex.protect t.watch_lock (fun () ->
        t.defer_depth <- t.defer_depth - 1;
        if t.defer_depth = 0 then begin
          let evs = List.of_seq (Queue.to_seq t.pending) in
          Queue.clear t.pending;
          evs
        end
        else [])
  in
  match f () with
  | v ->
    let evs = finish () in
    (v, fun () -> List.iter (deliver_event t) evs)
  | exception e ->
    (* The protected section failed: deliver what already happened right
       away rather than lose the notifications. *)
    List.iter (deliver_event t) (finish ());
    raise e

let store t = t.store
let acl t = t.acl
let branch_table t = t.branches
let tag_table (t : t) = t.tags

let default_user = "anonymous"

let check t ~user ~key ~branch level = Acl.check t.acl ~user ~key ~branch level

let head_uid t ~key ~branch =
  match Branch.head t.branches ~key ~branch with
  | Some uid -> Ok uid
  | None ->
    if Branch.branches t.branches ~key = [] then Error (Errors.Key_not_found key)
    else Error (Errors.Branch_not_found { key; branch })

let load_fnode t uid =
  match Fnode.load t.store uid with
  | Ok fnode -> Ok fnode
  | Error e -> Error (Errors.Corrupt e)

let value_of_fnode t fnode =
  match Fnode.value t.store fnode with
  | Ok v -> Ok v
  | Error e -> Error (Errors.Corrupt e)

let next_seq t bases =
  let max_base =
    List.fold_left
      (fun acc base ->
        match Fnode.load t.store base with
        | Ok fnode -> max acc fnode.Fnode.seq
        | Error _ -> acc)
      0 bases
  in
  max_base + 1

let commit t ~key ~bases ~author ~message value =
  let fnode =
    Fnode.v ~key ~value_descriptor:(Value.descriptor value) ~bases ~author
      ~message ~seq:(next_seq t bases)
  in
  Fnode.store t.store fnode

(* ---------------- write ---------------- *)

let put ?(user = default_user) ?(message = "put") ?(branch = Branch.default_branch)
    t ~key value =
  timed h_put "forkbase.put" @@ fun () ->
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Write in
  let bases =
    match Branch.head t.branches ~key ~branch with
    | Some head -> [ head ]
    | None -> []
  in
  let uid = commit t ~key ~bases ~author:user ~message value in
  move_head t ~key ~branch uid;
  Ok uid

let put_cas ?(user = default_user) ?(message = "put")
    ?(branch = Branch.default_branch) t ~key ~expected_head value =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Write in
  let current = Branch.head t.branches ~key ~branch in
  let matches =
    match current, expected_head with
    | None, None -> true
    | Some c, Some e -> Hash.equal c e
    | _ -> false
  in
  if not matches then
    Error
      (Errors.Merge_conflict
         { key;
           details =
             [ Printf.sprintf "branch %S moved: expected %s, found %s" branch
                 (match expected_head with
                  | Some e -> Hash.short e
                  | None -> "<none>")
                 (match current with
                  | Some c -> Hash.short c
                  | None -> "<none>") ] })
  else begin
    let uid =
      commit t ~key ~bases:(Option.to_list current) ~author:user ~message
        value
    in
    move_head t ~key ~branch uid;
    Ok uid
  end

let put_all ?(user = default_user) ?(message = "put") ?(branch = Branch.default_branch)
    t pairs =
  guard @@ fun () ->
  (* Validate everything up front so the head swap below cannot fail
     half-way: distinct keys, then write permission on each. *)
  let keys = List.map fst pairs in
  if List.length (List.sort_uniq String.compare keys) <> List.length keys
  then Errors.invalid "put_all: duplicate keys in batch"
  else
    let* () =
      List.fold_left
        (fun acc key ->
          let* () = acc in
          check t ~user ~key ~branch Acl.Write)
        (Ok ()) keys
    in
    (* Chunk writes are content-addressed and harmless if orphaned; only
       the final head updates are the commit point. *)
    let committed =
      List.map
        (fun (key, value) ->
          let bases = Option.to_list (Branch.head t.branches ~key ~branch) in
          (key, commit t ~key ~bases ~author:user ~message value))
        pairs
    in
    List.iter (fun (key, uid) -> move_head t ~key ~branch uid) committed;
    Ok committed

(* ---------------- read ---------------- *)

let head ?(user = default_user) ?(branch = Branch.default_branch) t ~key =
  let* () = check t ~user ~key ~branch Acl.Read in
  head_uid t ~key ~branch

let get ?user ?branch t ~key =
  timed h_get "forkbase.get" @@ fun () ->
  guard @@ fun () ->
  let* uid = head ?user ?branch t ~key in
  let* fnode = load_fnode t uid in
  value_of_fnode t fnode

let get_at ?(user = default_user) t uid =
  guard @@ fun () ->
  let* fnode = load_fnode t uid in
  let* () =
    check t ~user ~key:fnode.Fnode.key ~branch:"*" Acl.Read
  in
  value_of_fnode t fnode

let latest ?(user = default_user) t ~key =
  let bs =
    List.filter
      (fun (branch, _) -> Acl.allowed t.acl ~user ~key ~branch Acl.Read)
      (Branch.branches t.branches ~key)
  in
  if bs = [] then Error (Errors.Key_not_found key) else Ok bs

let meta ?(user = default_user) t uid =
  guard @@ fun () ->
  let* fnode = load_fnode t uid in
  let* () = check t ~user ~key:fnode.Fnode.key ~branch:"*" Acl.Read in
  Ok fnode

let get_as_of ?(user = default_user) ?(branch = Branch.default_branch) t ~key
    ~seq =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Read in
  let* uid = head_uid t ~key ~branch in
  let* history =
    match Dag.history t.store uid with
    | Ok h -> Ok h
    | Error e -> Error (Errors.Corrupt e)
  in
  match List.find_opt (fun f -> f.Fnode.seq <= seq) history with
  | None ->
    Errors.invalid "no version of %s/%s at or before logical time %d" key
      branch seq
  | Some fnode -> value_of_fnode t fnode

let list_keys ?(user = default_user) t =
  List.filter
    (fun key ->
      List.exists
        (fun (branch, _) -> Acl.allowed t.acl ~user ~key ~branch Acl.Read)
        (Branch.branches t.branches ~key))
    (Branch.keys t.branches)

let log ?(user = default_user) ?(branch = Branch.default_branch) ?limit t ~key
    =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Read in
  let* uid = head_uid t ~key ~branch in
  match Dag.history ?limit t.store uid with
  | Ok nodes -> Ok nodes
  | Error e -> Error (Errors.Corrupt e)

(* ---------------- branching ---------------- *)

let fork ?(user = default_user) ?(from_branch = Branch.default_branch) t ~key
    ~new_branch =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:from_branch Acl.Read in
  let* () = check t ~user ~key ~branch:new_branch Acl.Admin in
  let* uid = head_uid t ~key ~branch:from_branch in
  if Branch.exists t.branches ~key ~branch:new_branch then
    Errors.invalid "branch %S already exists for key %S" new_branch key
  else begin
    move_head t ~key ~branch:new_branch uid;
    Ok uid
  end

let fork_at ?(user = default_user) t ~key ~new_branch uid =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:new_branch Acl.Admin in
  let* fnode = load_fnode t uid in
  if not (String.equal fnode.Fnode.key key) then
    Errors.invalid "version %s belongs to key %S, not %S" (Hash.to_hex uid)
      fnode.Fnode.key key
  else if Branch.exists t.branches ~key ~branch:new_branch then
    Errors.invalid "branch %S already exists for key %S" new_branch key
  else begin
    move_head t ~key ~branch:new_branch uid;
    Ok uid
  end

let rename_branch ?(user = default_user) t ~key ~from_branch ~to_branch =
  let* () = check t ~user ~key ~branch:from_branch Acl.Admin in
  let* () = check t ~user ~key ~branch:to_branch Acl.Admin in
  match Branch.rename t.branches ~key ~from_branch ~to_branch with
  | Ok () -> Ok ()
  | Error e -> Error (Errors.Invalid e)

let delete_branch ?(user = default_user) t ~key ~branch =
  let* () = check t ~user ~key ~branch Acl.Admin in
  if Branch.remove t.branches ~key ~branch then Ok ()
  else Error (Errors.Branch_not_found { key; branch })

(* ---------------- tags ---------------- *)

let tag ?(user = default_user) t ~key ~name uid =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:"*" Acl.Admin in
  let* fnode = load_fnode t uid in
  if not (String.equal fnode.Fnode.key key) then
    Errors.invalid "version %s belongs to key %S, not %S" (Hash.to_hex uid)
      fnode.Fnode.key key
  else if Branch.exists t.tags ~key ~branch:name then
    Errors.invalid "tag %S already exists for key %S (tags are immutable)"
      name key
  else begin
    Branch.set_head t.tags ~key ~branch:name uid;
    Ok ()
  end

let tags ?(user = default_user) (t : t) ~key =
  if Acl.allowed t.acl ~user ~key ~branch:"*" Acl.Read then
    Branch.branches t.tags ~key
  else []

let tag_lookup ?(user = default_user) t ~key ~name =
  let* () = check t ~user ~key ~branch:"*" Acl.Read in
  match Branch.head t.tags ~key ~branch:name with
  | Some uid -> Ok uid
  | None -> Errors.invalid "no tag %S for key %S" name key

let delete_tag ?(user = default_user) t ~key ~name =
  let* () = check t ~user ~key ~branch:"*" Acl.Admin in
  if Branch.remove t.tags ~key ~branch:name then Ok ()
  else Errors.invalid "no tag %S for key %S" name key

(* ---------------- diff ---------------- *)

let diff_versions ?(user = default_user) t uid1 uid2 =
  guard @@ fun () ->
  let* f1 = load_fnode t uid1 in
  let* f2 = load_fnode t uid2 in
  let* () = check t ~user ~key:f1.Fnode.key ~branch:"*" Acl.Read in
  let* () = check t ~user ~key:f2.Fnode.key ~branch:"*" Acl.Read in
  let* v1 = value_of_fnode t f1 in
  let* v2 = value_of_fnode t f2 in
  Diffview.compute v1 v2

let diff ?(user = default_user) t ~key ~branch1 ~branch2 =
  timed h_diff "forkbase.diff" @@ fun () ->
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:branch1 Acl.Read in
  let* () = check t ~user ~key ~branch:branch2 Acl.Read in
  let* u1 = head_uid t ~key ~branch:branch1 in
  let* u2 = head_uid t ~key ~branch:branch2 in
  diff_versions ~user t u1 u2

(* ---------------- merge ---------------- *)

type merge_strategy =
  | Fail_on_conflict
  | Prefer_ours
  | Prefer_theirs

let map_resolver strategy =
  match strategy with
  | Fail_on_conflict -> fun _ -> None
  | Prefer_ours -> Pmap.resolve_ours
  | Prefer_theirs -> Pmap.resolve_theirs

let set_resolver strategy =
  match strategy with
  | Fail_on_conflict -> fun _ -> None
  | Prefer_ours -> Pset.resolve_ours
  | Prefer_theirs -> Pset.resolve_theirs

let pp_map_conflict (c : Pmap.conflict) = Printf.sprintf "entry %S" c.Pmap.key
let pp_set_conflict (c : Pset.conflict) = Printf.sprintf "element %S" c.Pset.key

(* Sequences (lists, blobs) merge when the two sides' edits are disjoint
   ranges of the base: apply the higher-positioned splice first so the
   lower one's offsets stay valid. *)
let disjoint_ranges (a_pos, a_len) (b_pos, b_len) =
  a_pos + a_len <= b_pos || b_pos + b_len <= a_pos

let merge_lists ~base ~ours ~theirs =
  match Plist.diff base ours, Plist.diff base theirs with
  | None, _ -> Some theirs
  | _, None -> Some ours
  | Some da, Some db ->
    if
      disjoint_ranges
        (da.Plist.old_pos, da.Plist.old_len)
        (db.Plist.old_pos, db.Plist.old_len)
    then begin
      (* Splice theirs' replacement into ours; positions shift by ours'
         length delta when theirs lands after ours' edit. *)
      let delta = da.Plist.new_len - da.Plist.old_len in
      let pos =
        if db.Plist.old_pos >= da.Plist.old_pos + da.Plist.old_len then
          db.Plist.old_pos + delta
        else db.Plist.old_pos
      in
      let replacement =
        List.filteri
          (fun i _ -> i >= db.Plist.new_pos && i < db.Plist.new_pos + db.Plist.new_len)
          (Plist.to_list theirs)
      in
      Some (Plist.splice ours ~pos ~remove:db.Plist.old_len ~insert:replacement)
    end
    else None

let merge_blobs ~base ~ours ~theirs =
  match Pblob.diff base ours, Pblob.diff base theirs with
  | None, _ -> Some theirs
  | _, None -> Some ours
  | Some da, Some db ->
    if
      disjoint_ranges
        (da.Pblob.old_pos, da.Pblob.old_len)
        (db.Pblob.old_pos, db.Pblob.old_len)
    then begin
      let delta = da.Pblob.new_len - da.Pblob.old_len in
      let pos =
        if db.Pblob.old_pos >= da.Pblob.old_pos + da.Pblob.old_len then
          db.Pblob.old_pos + delta
        else db.Pblob.old_pos
      in
      let replacement =
        Pblob.read theirs ~pos:db.Pblob.new_pos ~len:db.Pblob.new_len
      in
      Some (Pblob.splice ours ~pos ~remove:db.Pblob.old_len ~insert:replacement)
    end
    else None

(* Structural three-way value merge.  Equal values and one-sided changes
   are handled uniformly for every type; entry-level merging exists for
   maps, sets and tables (the types with keyed entries); lists and blobs
   merge when the two sides edited disjoint ranges. *)
let merge_values t ~key ~strategy ~base ~ours ~theirs =
  ignore t;
  if Value.equal ours theirs then Ok ours
  else if Value.equal base ours then Ok theirs   (* only theirs changed *)
  else if Value.equal base theirs then Ok ours   (* only ours changed *)
  else
    match (base : Value.t), (ours : Value.t), (theirs : Value.t) with
    | Value.Map b, Value.Map o, Value.Map h -> (
      match
        Pmap.merge ~on_conflict:(map_resolver strategy) ~base:b ~ours:o
          ~theirs:h ()
      with
      | Ok m -> Ok (Value.Map m)
      | Error conflicts ->
        Error
          (Errors.Merge_conflict
             { key; details = List.map pp_map_conflict conflicts }))
    | Value.Set b, Value.Set o, Value.Set h -> (
      match
        Pset.merge ~on_conflict:(set_resolver strategy) ~base:b ~ours:o
          ~theirs:h ()
      with
      | Ok s -> Ok (Value.Set s)
      | Error conflicts ->
        Error
          (Errors.Merge_conflict
             { key; details = List.map pp_set_conflict conflicts }))
    | Value.Table b, Value.Table o, Value.Table h ->
      let sb = Table.schema b and so = Table.schema o and sh = Table.schema h in
      if not (Fb_types.Schema.equal so sh && Fb_types.Schema.equal sb so) then
        Error
          (Errors.Merge_conflict
             { key; details = [ "table schemas diverged" ] })
      else (
        match
          Pmap.merge ~on_conflict:(map_resolver strategy)
            ~base:(Table.rows_map b) ~ours:(Table.rows_map o)
            ~theirs:(Table.rows_map h) ()
        with
        | Ok rows ->
          Ok
            (Value.Table
               (Table.of_rows_root (Pmap.store rows) so (Pmap.root rows)))
        | Error conflicts ->
          Error
            (Errors.Merge_conflict
               { key;
                 details =
                   List.map
                     (fun (c : Pmap.conflict) ->
                       Printf.sprintf "row %S" c.Pmap.key)
                     conflicts }))
    | Value.List b, Value.List o, Value.List h -> (
      match merge_lists ~base:b ~ours:o ~theirs:h with
      | Some merged -> Ok (Value.List merged)
      | None -> (
        match strategy with
        | Prefer_ours -> Ok ours
        | Prefer_theirs -> Ok theirs
        | Fail_on_conflict ->
          Error
            (Errors.Merge_conflict
               { key; details = [ "overlapping list edits" ] })))
    | Value.Blob b, Value.Blob o, Value.Blob h -> (
      match merge_blobs ~base:b ~ours:o ~theirs:h with
      | Some merged -> Ok (Value.Blob merged)
      | None -> (
        match strategy with
        | Prefer_ours -> Ok ours
        | Prefer_theirs -> Ok theirs
        | Fail_on_conflict ->
          Error
            (Errors.Merge_conflict
               { key; details = [ "overlapping blob edits" ] })))
    | _ -> (
      (* No structural merge for primitives or type-changed values: both
         sides changed, so only a strategy can pick a winner. *)
      match strategy with
      | Prefer_ours -> Ok ours
      | Prefer_theirs -> Ok theirs
      | Fail_on_conflict ->
        Error
          (Errors.Merge_conflict
             { key;
               details =
                 [ Printf.sprintf "both sides changed this %s value"
                     (Value.type_name ours) ] }))

let merge ?(user = default_user) ?message ?(strategy = Fail_on_conflict) t
    ~key ~into ~from_branch =
  timed h_merge "forkbase.merge" @@ fun () ->
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:into Acl.Write in
  let* () = check t ~user ~key ~branch:from_branch Acl.Read in
  let* ours_uid = head_uid t ~key ~branch:into in
  let* theirs_uid = head_uid t ~key ~branch:from_branch in
  if Hash.equal ours_uid theirs_uid then Ok ours_uid
  else
    let* base_uid =
      match Dag.merge_base t.store ours_uid theirs_uid with
      | Ok b -> Ok b
      | Error e -> Error (Errors.Corrupt e)
    in
    match base_uid with
    | Some b when Hash.equal b theirs_uid ->
      (* [from] is already contained in [into]. *)
      Ok ours_uid
    | Some b when Hash.equal b ours_uid ->
      (* Fast-forward [into] to [from]'s head. *)
      move_head t ~key ~branch:into theirs_uid;
      Ok theirs_uid
    | _ ->
      let* ours_fnode = load_fnode t ours_uid in
      let* theirs_fnode = load_fnode t theirs_uid in
      let* ours = value_of_fnode t ours_fnode in
      let* theirs = value_of_fnode t theirs_fnode in
      let* base =
        match base_uid with
        | None ->
          (* Unrelated histories: merge against an empty value of ours'
             shape so everything counts as added. *)
          (match (ours : Value.t) with
           | Value.Map _ -> Ok (Value.Map (Pmap.empty t.store))
           | Value.Set _ -> Ok (Value.Set (Pset.empty t.store))
           | Value.Table o ->
             Ok (Value.Table (Table.create t.store (Table.schema o)))
           | v -> Ok v)
        | Some b ->
          let* base_fnode = load_fnode t b in
          value_of_fnode t base_fnode
      in
      let* merged = merge_values t ~key ~strategy ~base ~ours ~theirs in
      let message =
        match message with
        | Some m -> m
        | None -> Printf.sprintf "merge %s into %s" from_branch into
      in
      let uid =
        commit t ~key ~bases:[ ours_uid; theirs_uid ] ~author:user ~message
          merged
      in
      move_head t ~key ~branch:into uid;
      Ok uid

let merge_preview ?(user = default_user) t ~key ~into ~from_branch =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch:into Acl.Read in
  let* () = check t ~user ~key ~branch:from_branch Acl.Read in
  let* ours_uid = head_uid t ~key ~branch:into in
  let* theirs_uid = head_uid t ~key ~branch:from_branch in
  if Hash.equal ours_uid theirs_uid then Ok `Already_merged
  else
    let* base_uid =
      match Dag.merge_base t.store ours_uid theirs_uid with
      | Ok b -> Ok b
      | Error e -> Error (Errors.Corrupt e)
    in
    match base_uid with
    | Some b when Hash.equal b theirs_uid -> Ok `Already_merged
    | Some b when Hash.equal b ours_uid -> Ok `Fast_forward
    | _ -> (
      let* ours_fnode = load_fnode t ours_uid in
      let* theirs_fnode = load_fnode t theirs_uid in
      let* ours = value_of_fnode t ours_fnode in
      let* theirs = value_of_fnode t theirs_fnode in
      let* base =
        match base_uid with
        | None -> (
          match (ours : Value.t) with
          | Value.Map _ -> Ok (Value.Map (Pmap.empty t.store))
          | Value.Set _ -> Ok (Value.Set (Pset.empty t.store))
          | Value.Table o ->
            Ok (Value.Table (Table.create t.store (Table.schema o)))
          | v -> Ok v)
        | Some b ->
          let* base_fnode = load_fnode t b in
          value_of_fnode t base_fnode
      in
      match
        merge_values t ~key ~strategy:Fail_on_conflict ~base ~ours ~theirs
      with
      | Ok _ -> Ok `Clean
      | Error (Errors.Merge_conflict { details; _ }) -> Ok (`Conflicts details)
      | Error e -> Error e)

(* ---------------- dataset conveniences ---------------- *)

let get_table ?user ?branch t ~key =
  guard @@ fun () ->
  let* value = get ?user ?branch t ~key in
  match Value.to_table value with
  | Some table -> Ok table
  | None ->
    Error
      (Errors.Type_mismatch { expected = "table"; got = Value.type_name value })

let select ?user ?branch t ~key pred =
  guard @@ fun () ->
  let* table = get_table ?user ?branch t ~key in
  Ok (Table.select table pred)

let table_stat ?user ?branch t ~key =
  guard @@ fun () ->
  let* table = get_table ?user ?branch t ~key in
  Ok (Table.stat table)

let export_csv ?user ?branch t ~key =
  guard @@ fun () ->
  let* table = get_table ?user ?branch t ~key in
  Ok (Table.to_csv table)

let import_csv ?user ?message ?branch ?key_column t ~key content =
  guard @@ fun () ->
  match Table.of_csv t.store ?key_column content with
  | Error e -> Error (Errors.Invalid e)
  | Ok table ->
    put ?user ?message ?branch t ~key (Value.Table table)

type row_event = {
  version : uid;
  author : string;
  message : string;
  seq : int;
  change : Table.row_change;
}

let row_history ?(user = default_user) ?(branch = Branch.default_branch)
    ?limit t ~key ~row =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Read in
  let* uid = head_uid t ~key ~branch in
  let* history =
    match Dag.history ?limit t.store uid with
    | Ok h -> Ok h
    | Error e -> Error (Errors.Corrupt e)
  in
  (* Walk consecutive (parent, child) pairs newest-first; linear history
     assumed along the first-parent chain, matching [log]'s view. *)
  let table_of fnode =
    let* value = value_of_fnode t fnode in
    match Value.to_table value with
    | Some table -> Ok (Some table)
    | None -> Ok None
  in
  let row_change_of t1 t2 =
    match t1, t2 with
    | None, None -> Ok None
    | _ ->
      let empty_like some =
        Table.create t.store (Table.schema some)
      in
      let t1', t2' =
        match t1, t2 with
        | Some a, Some b -> (a, b)
        | None, Some b -> (empty_like b, b)
        | Some a, None -> (a, empty_like a)
        | None, None -> assert false
      in
      (match Table.diff t1' t2' with
       | Error _ ->
         (* Schema changed between versions: report the row as rewritten if
            present on either side. *)
         Ok
           (match Table.find t2' row with
            | Some r -> Some (Table.Row_added r)
            | None -> (
              match Table.find t1' row with
              | Some r -> Some (Table.Row_removed r)
              | None -> None))
       | Ok changes ->
         Ok
           (List.find_opt
              (fun c ->
                match (c : Table.row_change) with
                | Table.Row_added r | Table.Row_removed r ->
                  String.equal (Table.key_of_row (Table.schema t2') r) row
                | Table.Row_modified (k, _) -> String.equal k row)
              changes))
  in
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | child :: rest ->
      let* child_table = table_of child in
      let* parent_table =
        match child.Fnode.bases with
        | [] -> Ok None
        | base :: _ -> (
          match Fnode.load t.store base with
          | Error e -> Error (Errors.Corrupt e)
          | Ok parent -> table_of parent)
      in
      let* change = row_change_of parent_table child_table in
      let acc =
        match change with
        | None -> acc
        | Some change ->
          { version = Fnode.uid child;
            author = child.Fnode.author;
            message = child.Fnode.message;
            seq = child.Fnode.seq;
            change }
          :: acc
      in
      walk acc rest
  in
  walk [] history

(* ---------------- verification ---------------- *)

let verify ?(user = default_user) ?check_history ?check_history_values t uid =
  guard @@ fun () ->
  let* fnode = load_fnode t uid in
  let* () = check t ~user ~key:fnode.Fnode.key ~branch:"*" Acl.Read in
  match Verify.verify ?check_history ?check_history_values t.store uid with
  | Ok report -> Ok report
  | Error e -> Error (Errors.Corrupt e)

let verify_branch ?(user = default_user) t ~key ~branch =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Read in
  let* uid = head_uid t ~key ~branch in
  match Verify.verify t.store uid with
  | Ok report -> Ok report
  | Error e -> Error (Errors.Corrupt e)

(* ---------------- entry proofs ---------------- *)

type entry_proof = {
  fnode_bytes : string;
  path : string list;
}

let encode_entry_proof p =
  Fb_codec.Codec.to_string
    (fun w p ->
      Fb_codec.Codec.bytes w p.fnode_bytes;
      Fb_codec.Codec.list w Fb_codec.Codec.bytes p.path)
    p

let decode_entry_proof s =
  match
    Fb_codec.Codec.of_string
      (fun r ->
        let fnode_bytes = Fb_codec.Codec.read_bytes r in
        let path = Fb_codec.Codec.read_list r Fb_codec.Codec.read_bytes in
        { fnode_bytes; path })
      s
  with
  | Ok p -> Ok p
  | Error e -> Error (Errors.Invalid ("entry proof: " ^ e))

(* The provable value shapes: anything whose entries live in a Pmap. *)
let rows_of_value = function
  | Value.Map m -> Ok m
  | Value.Table t -> Ok (Table.rows_map t)
  | v ->
    Error
      (Errors.Type_mismatch
         { expected = "map or table"; got = Value.type_name v })

let prove_entry ?user ?branch t ~key ~entry_key =
  guard @@ fun () ->
  let* uid = head ?user ?branch t ~key in
  let* fnode = load_fnode t uid in
  let* value = value_of_fnode t fnode in
  let* rows = rows_of_value value in
  let* path =
    if Pmap.is_empty rows then Ok []
    else
      match Pmap.prove rows entry_key with
      | Ok p -> Ok p
      | Error e -> Error (Errors.Corrupt e)
  in
  match t.store.Store.get_raw uid with
  | Some fnode_bytes -> Ok { fnode_bytes; path }
  | None -> Error (Errors.Version_not_found (Hash.to_hex uid))

let verify_entry_proof ~uid ~key ~entry_key proof =
  (* 1. The FNode bytes must hash to the trusted uid and carry the right
     object key. *)
  if not (Hash.equal (Hash.of_string proof.fnode_bytes) uid) then
    Errors.corrupt "proof: fnode bytes do not hash to the uid"
  else
    let* chunk =
      match Fb_chunk.Chunk.decode proof.fnode_bytes with
      | Ok c -> Ok c
      | Error e -> Errors.corrupt "proof: %s" e
    in
    let* fnode =
      match Fnode.of_chunk chunk with
      | Ok f -> Ok f
      | Error e -> Errors.corrupt "proof: %s" e
    in
    if not (String.equal fnode.Fnode.key key) then
      Errors.corrupt "proof: version belongs to key %S" fnode.Fnode.key
    else
      (* 2. Extract the authenticated value root from the descriptor. *)
      let* roots =
        match Value.roots_of_descriptor fnode.Fnode.value_descriptor with
        | Ok r -> Ok r
        | Error e -> Errors.corrupt "proof: %s" e
      in
      match roots, proof.path with
      | [], [] -> Ok None (* empty value: provably absent *)
      | [], _ -> Errors.corrupt "proof: path against an empty value"
      | [ root ], path -> (
        (* 3. Walk the chunk path under the root. *)
        match Pmap.verify_proof ~root entry_key path with
        | Ok entry -> Ok (Option.map (fun (b : Pmap.binding) -> b.value) entry)
        | Error e -> Error (Errors.Corrupt e))
      | _ -> Errors.corrupt "proof: unsupported multi-root value"

(* ---------------- delta sync ---------------- *)

(* Fast-forward a branch head onto [root], whose closure must already be
   in the store — the atomic final step of both bundle import and a
   PUSH/PULL sync session.  Refuses absent roots, cross-key roots, and
   non-fast-forward moves; funnels through [move_head] so local watchers
   and remote SUBSCRIBE sessions observe the jump as one event. *)
let advance_head ?(user = default_user) ?(branch = Branch.default_branch) t
    ~key root =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Write in
  let* () =
    if Store.mem t.store root then Ok ()
    else Error (Errors.Version_not_found (Hash.to_hex root))
  in
  let* fnode = load_fnode t root in
  if not (String.equal fnode.Fnode.key key) then
    Errors.invalid "version belongs to key %S, not %S" fnode.Fnode.key key
  else
    let* () =
      match Branch.head t.branches ~key ~branch with
      | None -> Ok ()
      | Some current ->
        if Hash.equal current root then Ok ()
        else (
          match Dag.is_ancestor t.store ~ancestor:current root with
          | Ok true -> Ok ()
          | Ok false ->
            Errors.invalid
              "version is not a fast-forward of %s/%s; sync to a side branch \
               and merge"
              key branch
          | Error e -> Error (Errors.Corrupt e))
    in
    move_head t ~key ~branch root;
    Ok root

(* Ingest one chunk from a sync peer.  The bytes must hash to the id they
   were announced under ([Sync.verify_encoded]) and every chunk-level
   child must already be present — senders stream child-first
   ([Sync.plan_order]), so honoring this keeps the store closure-complete
   at every instant and [advance_head] needs no O(history) closure walk. *)
let sync_put ?(user = default_user) ?(branch = Branch.default_branch) t ~key
    id encoded =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Write in
  let* chunk = Sync.verify_encoded id encoded in
  match
    List.filter
      (fun c -> not (Store.mem t.store c))
      (Dag.fnode_children chunk)
  with
  | [] -> Ok (Store.put t.store chunk)
  | absent ->
    Errors.invalid "sync: chunk %s references %d absent children; send \
                    children first"
      (Hash.short id) (List.length absent)

(* Membership probes and raw chunk reads for the sync walk.  Chunk ids
   are not scoped to a key, so these demand the instance-wide read grant
   (key pattern "*"). *)
let sync_have ?(user = default_user) t ids =
  guard @@ fun () ->
  let* () = check t ~user ~key:"*" ~branch:"*" Acl.Read in
  Ok (List.map (Store.mem t.store) ids)

let sync_chunk ?(user = default_user) t id =
  guard @@ fun () ->
  let* () = check t ~user ~key:"*" ~branch:"*" Acl.Read in
  match t.store.Store.get_raw id with
  | Some encoded -> Ok encoded
  | None -> Error (Errors.Version_not_found (Hash.to_hex id))

(* Chunk-level ingest for cluster storage nodes.  Unlike [sync_put] this
   does NOT demand the chunk's children — under consistent-hash routing
   a chunk's children live on other nodes, so a storage member holds an
   arbitrary slice of the graph and logical closure is the router's
   responsibility (the router's branch table only ever advances onto
   roots whose closure the *cluster* holds).  The tamper-evidence gate
   is non-negotiable either way: bytes that do not hash to the id are
   refused.  Content addressing makes this idempotent, so transports may
   retry it freely.  Chunk ids are not key-scoped: instance-wide write
   grant. *)
let chunk_put ?(user = default_user) t id encoded =
  guard @@ fun () ->
  let* () = check t ~user ~key:"*" ~branch:"*" Acl.Write in
  let* chunk = Sync.verify_encoded id encoded in
  Ok (Store.put t.store chunk)

(* Physical store shape for cluster health/rebalance accounting. *)
let chunk_stat ?(user = default_user) t =
  guard @@ fun () ->
  let* () = check t ~user ~key:"*" ~branch:"*" Acl.Read in
  Ok (Store.stats t.store)

(* Summarise every chunk held locally as one sized Bloom filter — the
   whole-store have-exchange that replaces per-wave membership probes.
   Callers must treat positives as "probably" and confirm before
   skipping ([Sync.Bloom]); negatives are definitive. *)
let sync_bloom ?(user = default_user) t =
  guard @@ fun () ->
  let* () = check t ~user ~key:"*" ~branch:"*" Acl.Read in
  let expected = (Store.stats t.store).Store.physical_chunks in
  let bloom = Sync.Bloom.create ~expected in
  t.store.Store.iter (fun id _ -> Sync.Bloom.add bloom id);
  Ok bloom

(* ---------------- bundles ---------------- *)

let export_bundle ?(user = default_user) ?(branch = Branch.default_branch) t
    ~key =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Read in
  let* uid = head_uid t ~key ~branch in
  match Fb_repr.Bundle.export t.store ~roots:[ uid ] with
  | Ok bundle -> Ok bundle
  | Error e -> Error (Errors.Corrupt e)

let import_bundle ?(user = default_user) ?(branch = Branch.default_branch) t
    ~key bundle =
  guard @@ fun () ->
  let* () = check t ~user ~key ~branch Acl.Write in
  let* roots =
    match Fb_repr.Bundle.import t.store bundle with
    | Ok (roots, _fresh) -> Ok roots
    | Error e -> Error (Errors.Invalid e)
  in
  let* root =
    match roots with
    | [ r ] -> Ok r
    | _ -> Errors.invalid "bundle carries %d roots, expected 1" (List.length roots)
  in
  advance_head ~user ~branch t ~key root

(* ---------------- stats / maintenance ---------------- *)

type stats = {
  keys : int;
  branches : int;
  versions : int;
  store : Store.stats;
}

let all_heads (t : t) =
  List.concat_map
    (fun key -> List.map snd (Branch.branches t.branches ~key))
    (Branch.keys t.branches)
  @ List.concat_map
      (fun key -> List.map snd (Branch.branches t.tags ~key))
      (Branch.keys t.tags)

let stats (t : t) =
  let keys = Branch.keys t.branches in
  let branches =
    List.fold_left
      (fun acc key -> acc + List.length (Branch.branches t.branches ~key))
      0 keys
  in
  let versions =
    let seen = ref Hash.Set.empty in
    List.iter
      (fun head ->
        match Dag.ancestors t.store head with
        | Ok set -> seen := Hash.Set.union set !seen
        | Error _ -> ())
      (all_heads t);
    Hash.Set.cardinal !seen
  in
  { keys = List.length keys;
    branches;
    versions;
    store = Store.stats t.store }

let version_string = Hash.to_base32

let parse_version s =
  match Hash.of_base32 s with
  | Ok uid -> Ok uid
  | Error _ -> (
    match Hash.of_hex s with
    | Ok uid -> Ok uid
    | Error _ ->
      Errors.invalid "cannot parse version %S (expected Base32 or hex)" s)

let gc (t : t) =
  Fb_chunk.Gc.sweep t.store ~children:Dag.fnode_children ~roots:(all_heads t)

let scrub ?replica ?quarantine ?(dry_run = false) (t : t) =
  Fb_chunk.Scrub.run ~children:Dag.fnode_children ~roots:(all_heads t)
    ?replica ?quarantine ~dry_run t.store
