(** Request/response semantic view — the transport-agnostic core of the
    paper's "RESTful" API layer (Fig. 1).

    Requests are single lines: a verb followed by arguments, with shell-like
    double quoting for arguments containing spaces.  Responses start with
    [OK] or [ERR].  A REST gateway (or any other transport) maps its routes
    onto these verbs one-to-one; keeping the layer in-process makes the
    whole surface testable without a network stack.

    Verbs (case-insensitive):
    {v
    PUT <key> <branch> <value>          store a string primitive
    PUT-CSV <key> <branch> <csv>        store a relational table
    GET <key> <branch>                  render the head value
    GET-AT <uid>                        render a version by uid
    HEAD <key> <branch>                 head uid
    LATEST <key>                        branch -> uid lines
    LIST                                keys
    LOG <key> <branch>                  history lines
    BRANCH <key> <from> <new>           fork
    RENAME <key> <from> <to>            rename a branch
    META <uid>                          version metadata
    DIFF <key> <branch1> <branch2>      differential query
    MERGE <key> <into> <from>           three-way merge
    VERIFY <key> <branch>               tamper check
    FSCK                                report storage damage (dry scrub)
    SCRUB                               quarantine damaged chunks
    STAT                                instance statistics
    GET-JSON / DIFF-JSON / LOG-JSON / STAT-JSON / LATEST-JSON
                                        same queries with JSON bodies
                                        (see {!Webview})
    PROVE <key> <branch> <entry-key>    hex entry proof for light clients
    SYNC-HAVE <id...> / SYNC-GET <id> / SYNC-PUT <key> <branch> <id> <bytes>
    SYNC-ADVANCE <key> <branch> <uid>   delta-sync session verbs
    SYNC-BLOOM                          whole-store Bloom chunk summary
    CHUNK-PUT <id> <bytes>              verified ingest, no closure check
                                        (cluster storage members)
    CHUNK-STAT                          physical chunk/byte counts
    v} *)

type access = Read | Write
type scope = Key of string | Global

val classify : string list -> access * scope
(** Concurrency contract of a request: [Read] verbs (GET, DIFF, LIST,
    HEAD, LATEST, META, STAT, METRICS, VERIFY, PROVE, FSCK and the JSON
    variants) never mutate the instance and may execute concurrently;
    [Write] verbs (PUT, PUT-CSV, BRANCH, MERGE, RENAME, SCRUB) require
    exclusion.  [Key k] narrows the needed exclusion to [k]'s lock
    stripe; [Global] verbs span the whole instance.  Unknown verbs are
    [(Read, Global)] — they only produce an error.  This is the table
    {!Fb_net.Server} drives its striped reader-writer locking from. *)

val tokenize : string -> (string list, string) result
(** Split a request line on blanks; double quotes group (a closing quote
    is not a token boundary, so ["ab"cd] is one token [abcd]), [""] is an
    empty argument, and a backslash escapes a quote inside quotes. *)

val dispatch :
  ?user:string -> Forkbase.t -> string list -> (string, Errors.t) result
(** Execute one request given as a token list ([verb :: args]) — the
    transport-independent entry point ({!Fb_net.Server} ships token lists
    verbatim over its binary framing, so payloads with embedded newlines
    or quotes never re-enter a parser).  Never raises: storage faults
    surface as [Error (Transient _ | Corrupt _)]. *)

val handle : ?user:string -> Forkbase.t -> string -> string
(** [tokenize] + [dispatch] + status rendering for line transports; never
    raises.  The response is ["OK"] or ["OK <payload>"] (payload possibly
    multi-line — ambiguous over a line transport, which is why networked
    deployments use {!Fb_net}'s length-prefixed framing) or
    ["ERR <reason>"]. *)
