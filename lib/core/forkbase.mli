(** ForkBase — the public API (Fig. 1: Put, Get, List, Branch, Merge,
    Select, Stat, Export, Diff, Head, Rename, Latest, Meta).

    An instance wraps a content-addressed chunk store, a branch table and an
    access-control list.  Objects are identified by string keys; each key
    carries one or more branches; every Put appends a tamper-evident
    version (uid = Merkle root hash of the FNode, rendered to users in RFC
    4648 Base32).  All operations return typed results — nothing raises
    across this boundary. *)

type t

type uid = Fb_hash.Hash.t

(** {1 Instances} *)

val create : ?acl:Acl.t -> Fb_chunk.Store.t -> t
(** New instance over [store]; the default ACL is {!Acl.open_instance}. *)

val store : t -> Fb_chunk.Store.t
val acl : t -> Acl.t
val branch_table : t -> Fb_repr.Branch.t

(** {1 Change notification}

    In-process observers for collaborative tooling (the Web UI's live
    panes): a callback fires after any operation moves a branch head —
    Put, CAS, atomic batch, merge, fork, and bundle import.  Callbacks
    run synchronously on the mutating caller; exceptions they raise are
    swallowed. *)

type watch

type head_event = {
  key : string;
  branch : string;
  new_head : uid;
  old_head : uid option;  (** [None] when the branch was created *)
}

val watch :
  ?key:string -> ?branch:string -> t -> (head_event -> unit) -> watch
(** Observe head movements, optionally filtered to one key and/or branch
    name. *)

val unwatch : t -> watch -> unit

val with_deferred_watch : t -> (unit -> 'a) -> 'a * (unit -> unit)
(** [with_deferred_watch t f] runs [f] with watch delivery deferred: head
    events raised inside [f] are queued instead of invoking callbacks.
    Returns [f]'s result and a flush thunk that delivers the queued
    events; callers holding a lock around [f] (the network server's
    exclusive section) call the thunk {e after} releasing it, so watch
    callbacks can take arbitrary time — or themselves issue reads —
    without extending the exclusive section.  Deferral nests and is
    thread-safe; under concurrent deferred mutators the last finisher's
    thunk delivers the union, preserving order. *)

(** {1 Writing} *)

val put :
  ?user:string ->
  ?message:string ->
  ?branch:string ->
  t ->
  key:string ->
  Fb_types.Value.t ->
  (uid, Errors.t) result
(** Append a version to [branch] (default ["master"], created on first
    Put).  [user] (default ["anonymous"]) needs [Write] on the branch. *)

val put_cas :
  ?user:string ->
  ?message:string ->
  ?branch:string ->
  t ->
  key:string ->
  expected_head:uid option ->
  Fb_types.Value.t ->
  (uid, Errors.t) result
(** Compare-and-swap Put for optimistic concurrency between writers
    sharing a branch: commits only if the branch head still equals
    [expected_head] ([None] = the branch must not exist yet); otherwise
    returns [Error (Merge_conflict _)] and the caller re-reads, re-applies
    and retries — no lost updates. *)

val put_all :
  ?user:string ->
  ?message:string ->
  ?branch:string ->
  t ->
  (string * Fb_types.Value.t) list ->
  ((string * uid) list, Errors.t) result
(** Atomic multi-key Put: commit a version for every (key, value) pair and
    move all the branch heads together, or — on any permission or argument
    failure — move none.  Keys must be distinct.  Orphaned chunks from a
    failed attempt are reclaimed by {!gc}. *)

(** {1 Reading} *)

val get :
  ?user:string -> ?branch:string -> t -> key:string ->
  (Fb_types.Value.t, Errors.t) result

val get_at : ?user:string -> t -> uid -> (Fb_types.Value.t, Errors.t) result
(** Retrieve a historical version by uid. *)

val head : ?user:string -> ?branch:string -> t -> key:string ->
  (uid, Errors.t) result

val latest : ?user:string -> t -> key:string ->
  ((string * uid) list, Errors.t) result
(** All branch heads of a key — branch name and uid, sorted by name. *)

val meta : ?user:string -> t -> uid -> (Fb_repr.Fnode.t, Errors.t) result
(** Version metadata: key, bases, author, message, logical clock. *)

val get_as_of :
  ?user:string -> ?branch:string -> t -> key:string -> seq:int ->
  (Fb_types.Value.t, Errors.t) result
(** Time travel: the value of the newest version on the branch whose
    logical clock is <= [seq].  Errors if the branch has no version that
    old. *)

val list_keys : ?user:string -> t -> string list
(** Keys with at least one branch the user can read. *)

val log :
  ?user:string -> ?branch:string -> ?limit:int -> t -> key:string ->
  (Fb_repr.Fnode.t list, Errors.t) result
(** History of a branch head, newest first. *)

(** {1 Branching} *)

val fork :
  ?user:string -> ?from_branch:string -> t -> key:string ->
  new_branch:string -> (uid, Errors.t) result
(** Create [new_branch] pointing at [from_branch]'s head.  O(1): no data is
    copied, the new branch shares every chunk. *)

val fork_at :
  ?user:string -> t -> key:string -> new_branch:string -> uid ->
  (uid, Errors.t) result
(** Branch from a historical version. *)

val rename_branch :
  ?user:string -> t -> key:string -> from_branch:string -> to_branch:string ->
  (unit, Errors.t) result

val delete_branch :
  ?user:string -> t -> key:string -> branch:string -> (unit, Errors.t) result

(** {1 Tags}

    Named, immutable pointers to versions (the [git tag] analogue):
    released dataset editions, audit snapshots.  Unlike branch heads they
    never move — retagging a name fails — and they are GC roots. *)

val tag :
  ?user:string -> t -> key:string -> name:string -> uid ->
  (unit, Errors.t) result
(** Requires [Admin] on the key; the version must exist and belong to
    [key]; the name must be fresh. *)

val tags : ?user:string -> t -> key:string -> (string * uid) list
(** Tags of a key the user may read, sorted by name. *)

val tag_lookup :
  ?user:string -> t -> key:string -> name:string -> (uid, Errors.t) result

val delete_tag :
  ?user:string -> t -> key:string -> name:string -> (unit, Errors.t) result

val tag_table : t -> Fb_repr.Branch.t
(** The underlying name→uid table (persistence, like {!branch_table}). *)

(** {1 Diff and merge} *)

val diff :
  ?user:string -> t -> key:string -> branch1:string -> branch2:string ->
  (Diffview.t, Errors.t) result
(** Differential query between two branch heads (paper §III-B). *)

val diff_versions :
  ?user:string -> t -> uid -> uid -> (Diffview.t, Errors.t) result

type merge_strategy =
  | Fail_on_conflict  (** report conflicts, merge nothing *)
  | Prefer_ours       (** conflicting entries keep [into]'s side *)
  | Prefer_theirs     (** conflicting entries take [from]'s side *)

val merge :
  ?user:string ->
  ?message:string ->
  ?strategy:merge_strategy ->
  t ->
  key:string ->
  into:string ->
  from_branch:string ->
  (uid, Errors.t) result
(** Three-way merge of [from_branch] into [into] (paper §II-B): the base is
    the deepest common ancestor in the derivation DAG; fast-forwards are
    detected; structured values (map, set, table with equal schemas) merge
    at sub-tree level, reusing disjointly-modified pages (Fig. 3).  The
    merge FNode carries both heads as bases. *)

val merge_preview :
  ?user:string -> t -> key:string -> into:string -> from_branch:string ->
  ([ `Fast_forward | `Already_merged | `Clean | `Conflicts of string list ],
   Errors.t) result
(** Dry-run merge classification — nothing is committed and no head moves:
    what {!merge} with the default strategy would do. *)

(** {1 Dataset conveniences (Select / Export)} *)

val select :
  ?user:string -> ?branch:string -> t -> key:string ->
  (Fb_types.Table.row -> bool) ->
  (Fb_types.Table.row list, Errors.t) result
(** Filter rows of a table-valued key. *)

val table_stat :
  ?user:string -> ?branch:string -> t -> key:string ->
  (Fb_types.Table.col_stat list, Errors.t) result

type row_event = {
  version : uid;
  author : string;
  message : string;
  seq : int;
  change : Fb_types.Table.row_change;
}

val row_history :
  ?user:string -> ?branch:string -> ?limit:int -> t -> key:string ->
  row:string -> (row_event list, Errors.t) result
(** Provenance of one row of a table-valued key — the [git blame]/[git log
    -p] analogue: every version along the branch history where the row was
    added, removed or modified, newest first.  POS-Tree diffs make each
    step O(D log N), so auditing one row of a large dataset does not scan
    it.  [limit] caps the number of {e versions} examined. *)

val export_csv :
  ?user:string -> ?branch:string -> t -> key:string ->
  (string, Errors.t) result

val import_csv :
  ?user:string -> ?message:string -> ?branch:string -> ?key_column:int ->
  t -> key:string -> string -> (uid, Errors.t) result
(** Parse CSV (header + rows) into a table value and Put it. *)

(** {1 Verification (paper §III-C)} *)

val verify :
  ?user:string -> ?check_history:bool -> ?check_history_values:bool ->
  t -> uid -> (Fb_repr.Verify.report, Errors.t) result
(** Recompute every Merkle hash on the spot and compare with the uid — the
    client-side check against a malicious storage provider. *)

val verify_branch :
  ?user:string -> t -> key:string -> branch:string ->
  (Fb_repr.Verify.report, Errors.t) result

(** {1 Entry proofs (light clients)}

    A light client that trusts only a version uid can audit a single entry
    of a map- or table-valued version without fetching the value: the proof
    carries the FNode bytes (which hash to the uid) plus the O(log N)
    POS-Tree chunk path to the responsible leaf.  Verification is pure —
    no store, no trust in the prover. *)

type entry_proof

val encode_entry_proof : entry_proof -> string
val decode_entry_proof : string -> (entry_proof, Errors.t) result

val prove_entry :
  ?user:string -> ?branch:string -> t -> key:string -> entry_key:string ->
  (entry_proof, Errors.t) result
(** Proof for the entry under [entry_key] (a map key, or a table row key)
    in [key]'s branch head — covering presence or absence. *)

val verify_entry_proof :
  uid:uid -> key:string -> entry_key:string -> entry_proof ->
  (string option, Errors.t) result
(** Pure check against the trusted [uid].  [Ok (Some bytes)]: the version
    provably maps [entry_key] to [bytes] (a raw map value, or an encoded
    table row for {!Fb_types.Table.decode_row}).  [Ok None]: provably
    absent.  [Error _]: the proof does not authenticate. *)

(** {1 Delta sync (chunk-level exchange)}

    Server-side primitives of the PUSH/PULL protocol (see {!Sync} and
    [Fb_net.Remote.push]/[pull]).  A sender streams frontier chunks
    child-first through {!sync_put}, probing with {!sync_have} to cut
    descent at shared subtrees, then commits the transfer with
    {!advance_head}. *)

val advance_head :
  ?user:string -> ?branch:string -> t -> key:string -> uid ->
  (uid, Errors.t) result
(** Fast-forward [branch] of [key] onto an already-stored version.  The
    root must be present, must belong to [key], and the current head (if
    any) must be its ancestor; watchers and SUBSCRIBE sessions observe
    the move as a single head event.  Needs [Write] on the key. *)

val sync_put :
  ?user:string -> ?branch:string -> t -> key:string -> uid -> string ->
  (uid, Errors.t) result
(** Ingest one encoded chunk announced under the given id.  The bytes are
    re-hashed and must match the id ([Error (Corrupt _)] otherwise — the
    tamper-evidence gate), and every chunk-level child must already be
    present so the store stays closure-complete ([Error (Invalid _)]
    otherwise).  Needs [Write] on the key. *)

val sync_have : ?user:string -> t -> uid list -> (bool list, Errors.t) result
(** Positional membership probe: [true] for each id held locally.  Chunk
    ids are not key-scoped, so this needs an instance-wide read grant
    (key pattern ["*"]). *)

val sync_chunk : ?user:string -> t -> uid -> (string, Errors.t) result
(** Encoded bytes of one chunk, unverified as stored — receivers re-hash.
    [Error (Version_not_found _)] if absent.  Instance-wide read grant
    required, as for {!sync_have}. *)

val chunk_put : ?user:string -> t -> uid -> string -> (uid, Errors.t) result
(** Ingest one chunk {e without} the closure check — the verb cluster
    storage nodes serve: under consistent-hash routing a node holds an
    arbitrary slice of the graph, and closure is the routing tier's
    invariant, not the member's.  Bytes are still re-hashed against the
    id ([Error (Corrupt _)] on mismatch) and the put is idempotent, so
    transports may retry it.  Needs the instance-wide write grant (key
    pattern ["*"]) — ordinary key-scoped sync users cannot bypass
    {!sync_put}'s closure check. *)

val chunk_stat : ?user:string -> t -> (Fb_chunk.Store.stats, Errors.t) result
(** Physical store shape (chunk/byte counts) — what cluster health and
    rebalance accounting read from each member.  Instance-wide read
    grant. *)

val sync_bloom : ?user:string -> t -> (Sync.Bloom.t, Errors.t) result
(** One sized Bloom filter over every chunk id held locally — the
    whole-store have-exchange ({!Sync.Bloom}).  Negatives are definitive
    misses; positives must be confirmed with exact {!sync_have} waves
    before a sender skips a chunk.  Instance-wide read grant. *)

(** {1 Bundles (data exchange)} *)

val export_bundle :
  ?user:string -> ?branch:string -> t -> key:string ->
  (string, Errors.t) result
(** Pack a branch head and its full history closure into a self-contained
    byte string — the data-exchange counterpart of [git bundle]. *)

val import_bundle :
  ?user:string -> ?branch:string -> t -> key:string -> string ->
  (uid, Errors.t) result
(** Unpack a bundle and point [branch] of [key] at its root.  The bundle is
    fully re-hashed and closure-checked before anything is stored; the root
    must belong to [key]; an existing branch head must be an ancestor of
    the incoming root (fast-forward only — merge divergent histories with
    {!merge} after importing to a side branch). *)

(** {1 Stat and maintenance} *)

type stats = {
  keys : int;
  branches : int;             (** across all keys *)
  versions : int;             (** distinct reachable FNodes *)
  store : Fb_chunk.Store.stats;
}

val stats : t -> stats

val version_string : uid -> string
(** The user-facing Base32 rendering of a version (Fig. 6). *)

val parse_version : string -> (uid, Errors.t) result
(** Accepts Base32 (canonical) or hex. *)

val gc : t -> Fb_chunk.Gc.result
(** Drop chunks unreachable from any branch head. *)

val scrub :
  ?replica:Fb_chunk.Store.t ->
  ?quarantine:(uid -> string -> unit) ->
  ?dry_run:bool ->
  t ->
  Fb_chunk.Scrub.report
(** Integrity pass (fsck) over the instance's chunk store: verify every
    stored chunk against its hash, quarantine and delete damaged ones
    (repairing from [replica] when it holds healthy bytes), then walk the
    Merkle graph from every branch head and tag reporting reachable
    chunks the store cannot serve.  [dry_run] only reports.  See
    {!Fb_chunk.Scrub}. *)
