(** Durable ForkBase instances on a directory.

    Bundles the pieces a durable deployment needs: the directory-backed
    chunk store under [root/chunks], plus the branch and tag tables
    serialized to [root/BRANCHES] and [root/TAGS].  Mutating table state is
    only durable after {!save} (the CLI saves after every command); chunk
    writes are durable immediately.

    Layout:
    {v
    root/
      chunks/ab/<hex>   content-addressed chunks
      BRANCHES          serialized branch table
      TAGS              serialized tag table
    v} *)

val open_ :
  ?acl:Acl.t -> ?fsync:bool -> root:string -> unit ->
  (Forkbase.t, Errors.t) result
(** Open (creating directories as needed) an instance rooted at [root];
    fails on unreadable or corrupt table files.  Opening also performs
    crash recovery on the chunk directory (leftover [*.tmp] write
    artifacts are removed); [fsync] forces chunk writes to stable storage
    before they are published.  Reads are integrity-checked (each chunk is
    verified against its name the first time it is served), so on-disk
    damage surfaces as an error — never as silently wrong data; run scrub
    to quarantine and repair it. *)

val save : ?fsync:bool -> root:string -> Forkbase.t -> (unit, Errors.t) result
(** Persist the branch and tag tables (atomically: temp file + rename).
    With [fsync] (default [false]) the temp file is synced to stable
    storage before the rename and the directory entry after it, so a
    crash at any point leaves either the previous table or the new one —
    never a torn or empty file.  Without it the rename is still atomic
    against process crashes, but an OS/power failure can lose the most
    recent heads. *)

val with_instance :
  ?acl:Acl.t -> ?fsync:bool -> root:string ->
  (Forkbase.t -> ('a, Errors.t) result) -> ('a, Errors.t) result
(** Open, run, save on success.  [fsync] applies to both the chunk store
    and the table save. *)
