(** Durable ForkBase instances on a directory.

    Bundles the pieces a durable deployment needs: a chunk engine under
    [root], plus the branch and tag tables serialized to [root/BRANCHES]
    and [root/TAGS].  Mutating table state is only durable after {!save}
    (the CLI saves after every command); chunk durability depends on the
    engine (see below).

    Engines are named through the {!Fb_chunk.Store_provider} registry —
    [?backend] is a provider name, not a closed variant, so anything
    registered (including the networked ["cluster"] provider from
    [Fb_net]) opens through the same call:

    - ["log"] (the default for fresh roots) — the crash-consistent
      append-only pack log ({!Fb_chunk.Log_store}) under [root/log].
      Appends group-commit: they reach the OS immediately and are
      acknowledged in fsync batches; {!save} forces the outstanding batch
      down {e before} publishing the tables, so a saved head never
      references a chunk a power cut could take away.
    - ["file"] — one file per chunk under [root/chunks]
      ({!Fb_chunk.File_store}); each put is published by an atomic
      rename (synced when [fsync] is set).
    - ["mem"] — an ephemeral in-memory store (tables still persist).
    - ["auto"] (the default) keeps whatever engine the root already
      uses (first registered provider whose [detect] claims the root)
      and picks ["log"] for fresh roots, so upgrading never strands
      data.

    Layout:
    {v
    root/
      log/gen-<N>.log   append-only record log   (log engine)
      log/gen-<N>.idx   index checkpoint
      log/CURRENT       active generation
      chunks/ab/<hex>   content-addressed chunks (file engine)
      BRANCHES          serialized branch table
      TAGS              serialized tag table
    v} *)

val open_ :
  ?acl:Acl.t -> ?fsync:bool -> ?backend:string ->
  ?log_config:Fb_chunk.Log_store.config ->
  ?params:(string * string) list -> root:string -> unit ->
  (Forkbase.t, Errors.t) result
(** Open (creating directories as needed) an instance rooted at [root];
    fails on unreadable or corrupt table files.  Opening also performs
    crash recovery: the file engine removes leftover [*.tmp] write
    artifacts; the log engine replays its tail past the last checkpoint,
    truncates a torn final record and clears generations a crashed
    compaction left behind.  [backend] names a registered store
    provider; an unknown name is [Error (Invalid _)] listing what is
    registered.  [fsync] forces chunk writes to stable storage before
    they are acknowledged (default: on for the log engine, off for the
    file engine); [log_config] tunes the log engine (group-commit sizes,
    checkpoint cadence, background compactor) and is ignored by others;
    [params] carries free-form provider parameters (e.g. [("nodes",
    "host:port,…")] for ["cluster"]).  Reads are integrity-checked (each
    chunk is verified against its name the first time it is served), so
    on-disk damage surfaces as an error — never as silently wrong data;
    run scrub to quarantine and repair it. *)

val save : ?fsync:bool -> root:string -> Forkbase.t -> (unit, Errors.t) result
(** Persist the branch and tag tables (atomically: temp file + rename).
    Every provider instance open on [root] reaches its durability
    barrier ([sync]) {e first}, so the published tables only ever
    reference acknowledged chunks.  With [fsync] (default [false]) the
    table temp file is synced before the rename and the directory entry
    after it, so a crash at any point leaves either the previous table
    or the new one — never a torn or empty file.  Without it the rename
    is still atomic against process crashes, but an OS/power failure can
    lose the most recent heads. *)

val close : root:string -> unit
(** Release every provider instance opened for [root] in this process:
    final sync + checkpoint, background threads joined, descriptors
    closed.  Instances opened on [root] must not be used afterwards. *)

val log_handle : root:string -> Fb_chunk.Log_store.t option
(** The most recently opened log engine for [root] (for compaction,
    counters and test harnesses); [None] when [root] runs another
    provider. *)

val with_instance :
  ?acl:Acl.t -> ?fsync:bool -> ?backend:string ->
  ?log_config:Fb_chunk.Log_store.config ->
  ?params:(string * string) list -> root:string ->
  (Forkbase.t -> ('a, Errors.t) result) -> ('a, Errors.t) result
(** Open, run, save on success; always closes the engine it opened.
    [fsync] applies to both the chunk engine and the table save. *)
