module Chunk = Fb_chunk.Chunk
module Hash = Fb_hash.Hash
module Dag = Fb_repr.Dag

type stats = {
  chunks_moved : int;
  bytes_moved : int;
  chunks_skipped : int;
  rounds : int;
}

let empty_stats =
  { chunks_moved = 0; bytes_moved = 0; chunks_skipped = 0; rounds = 0 }

(* Batch shaping for the BATCH frames a sync session streams.  Membership
   probes are cheap (one hex id per token); chunk transfers are bounded
   by payload bytes as well as count so a batch can never approach the
   16 MiB frame ceiling even when every chunk is a full leaf. *)
let have_batch = 256
let get_batch = 64
let put_batch = 128
let put_batch_bytes = 4 * 1024 * 1024

let children = Dag.fnode_children

(* The ingest gate: the bytes must hash to the id they were announced
   under (chunk identity is the SHA-256 of the encoded bytes, so this is
   the whole tamper-evidence check) and must decode as a chunk.  Nothing
   that fails here may reach a store. *)
let verify_encoded id encoded =
  match Chunk.decode encoded with
  | Error e ->
    Errors.corrupt "sync: chunk %s does not decode: %s" (Hash.short id) e
  | Ok chunk ->
    let actual = Chunk.hash chunk in
    if Hash.equal actual id then Ok chunk
    else
      Errors.corrupt
        "sync: chunk announced as %s hashes to %s; refusing tampered bytes"
        (Hash.to_hex id) (Hash.to_hex actual)

(* Child-first (reverse topological) order of the subgraph [missing]
   admits under [roots]: every id appears after all of its missing
   children, so a receiver that insists every child is already present
   when a chunk arrives (the closure invariant) accepts the stream
   as-is.  Iterative DFS postorder — version DAGs and POS-Trees can be
   deep, and the explicit stack keeps the walk off the call stack.
   [children] is consulted only for ids [missing] admits. *)
let plan_order ~children ~missing ~roots =
  let seen = Hash.Tbl.create 64 in
  let order = ref [] in
  let rec go stack =
    match stack with
    | [] -> ()
    | `Enter id :: rest ->
      if Hash.Tbl.mem seen id || not (missing id) then go rest
      else begin
        Hash.Tbl.replace seen id ();
        go
          (List.fold_left
             (fun acc c -> `Enter c :: acc)
             (`Exit id :: rest) (children id))
      end
    | `Exit id :: rest ->
      order := id :: !order;
      go rest
  in
  go (List.map (fun r -> `Enter r) roots);
  List.rev !order

(* The sync-have reply: one byte per probed id, '1' = the peer holds it.
   Positional, so the caller must keep its probe order. *)
let encode_have bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let decode_have s =
  if String.for_all (fun c -> c = '0' || c = '1') s then
    Ok (List.init (String.length s) (fun i -> s.[i] = '1'))
  else Error (Errors.Invalid ("sync: unparsable have reply: " ^ s))
