module Chunk = Fb_chunk.Chunk
module Hash = Fb_hash.Hash
module Dag = Fb_repr.Dag

type stats = {
  chunks_moved : int;
  bytes_moved : int;
  chunks_skipped : int;
  rounds : int;
  bloom_fp : int;
}

let empty_stats =
  { chunks_moved = 0; bytes_moved = 0; chunks_skipped = 0; rounds = 0;
    bloom_fp = 0 }

(* Batch shaping for the BATCH frames a sync session streams.  Membership
   probes are cheap (one hex id per token); chunk transfers are bounded
   by payload bytes as well as count so a batch can never approach the
   16 MiB frame ceiling even when every chunk is a full leaf. *)
let have_batch = 256
let get_batch = 64
let put_batch = 128
let put_batch_bytes = 4 * 1024 * 1024

let children = Dag.fnode_children

(* The ingest gate: the bytes must hash to the id they were announced
   under (chunk identity is the SHA-256 of the encoded bytes, so this is
   the whole tamper-evidence check) and must decode as a chunk.  Nothing
   that fails here may reach a store. *)
let verify_encoded id encoded =
  match Chunk.decode encoded with
  | Error e ->
    Errors.corrupt "sync: chunk %s does not decode: %s" (Hash.short id) e
  | Ok chunk ->
    let actual = Chunk.hash chunk in
    if Hash.equal actual id then Ok chunk
    else
      Errors.corrupt
        "sync: chunk announced as %s hashes to %s; refusing tampered bytes"
        (Hash.to_hex id) (Hash.to_hex actual)

(* Child-first (reverse topological) order of the subgraph [missing]
   admits under [roots]: every id appears after all of its missing
   children, so a receiver that insists every child is already present
   when a chunk arrives (the closure invariant) accepts the stream
   as-is.  Iterative DFS postorder — version DAGs and POS-Trees can be
   deep, and the explicit stack keeps the walk off the call stack.
   [children] is consulted only for ids [missing] admits. *)
let plan_order ~children ~missing ~roots =
  let seen = Hash.Tbl.create 64 in
  let order = ref [] in
  let rec go stack =
    match stack with
    | [] -> ()
    | `Enter id :: rest ->
      if Hash.Tbl.mem seen id || not (missing id) then go rest
      else begin
        Hash.Tbl.replace seen id ();
        go
          (List.fold_left
             (fun acc c -> `Enter c :: acc)
             (`Exit id :: rest) (children id))
      end
    | `Exit id :: rest ->
      order := id :: !order;
      go rest
  in
  go (List.map (fun r -> `Enter r) roots);
  List.rev !order

(* The sync-have reply: one byte per probed id, '1' = the peer holds it.
   Positional, so the caller must keep its probe order. *)
let encode_have bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let decode_have s =
  if String.for_all (fun c -> c = '0' || c = '1') s then
    Ok (List.init (String.length s) (fun i -> s.[i] = '1'))
  else Error (Errors.Invalid ("sync: unparsable have reply: " ^ s))

(* Bloom-filter have-exchange: instead of probing the peer's membership
   256 ids at a time, the peer summarises its whole reachable chunk set
   in one sized filter and the sender tests locally.  A negative is
   definitive (the peer certainly lacks the chunk); a positive may be a
   false positive, so positives are still confirmed with exact sync-have
   waves before being skipped — a chunk silently skipped on a false
   positive would leave a hole in the receiver's closure. *)
module Bloom = struct
  type t = {
    bits : Bytes.t;
    m : int;  (* filter size in bits *)
    k : int;  (* hash functions *)
  }

  let bits_per_chunk = 10
  let hashes = 7
  let max_bits = 8 * 1024 * 1024 * 8  (* 8 MiB of filter, ~6.7M chunks *)

  let create ~expected =
    let m =
      max 64 (min max_bits (bits_per_chunk * max 1 expected))
    in
    { bits = Bytes.make ((m + 7) / 8) '\000'; m; k = hashes }

  let m t = t.m
  let k t = t.k

  (* Double hashing over the id's own SHA-256 bytes: h1 from bytes 0-7,
     h2 from bytes 8-15, index_i = h1 + i*h2 (mod m).  The id is already
     a uniform digest, so no further mixing is needed. *)
  let word id off =
    let raw = Hash.to_raw id in
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code raw.[off + i]))
    done;
    Int64.to_int (Int64.logand !v Int64.max_int)

  let indices t id =
    let h1 = word id 0 and h2 = word id 8 in
    List.init t.k (fun i ->
        let ix = (h1 + (i * h2)) mod t.m in
        if ix < 0 then ix + t.m else ix)

  let add t id =
    List.iter
      (fun ix ->
        let b = ix / 8 and bit = ix mod 8 in
        Bytes.set t.bits b
          (Char.chr (Char.code (Bytes.get t.bits b) lor (1 lsl bit))))
      (indices t id)

  let mem t id =
    List.for_all
      (fun ix ->
        let b = ix / 8 and bit = ix mod 8 in
        Char.code (Bytes.get t.bits b) land (1 lsl bit) <> 0)
      (indices t id)

  let fill_ratio t =
    let set = ref 0 in
    Bytes.iter
      (fun c ->
        let c = Char.code c in
        for bit = 0 to 7 do
          if c land (1 lsl bit) <> 0 then incr set
        done)
      t.bits;
    float_of_int !set /. float_of_int t.m

  (* Past half-full the false-positive rate climbs steeply (~(1/2)^k only
     holds near the design load); callers should fall back to exact
     waves rather than burn round trips confirming noise. *)
  let saturated t = fill_ratio t > 0.5

  (* Wire form: "m:k:" ++ raw bit bytes.  The prefix makes the geometry
     explicit so both ends agree without negotiating defaults. *)
  let encode t =
    Printf.sprintf "%d:%d:%s" t.m t.k (Bytes.to_string t.bits)

  let decode s =
    match String.index_opt s ':' with
    | None -> Error (Errors.Invalid "bloom: missing size prefix")
    | Some i -> (
      match String.index_from_opt s (i + 1) ':' with
      | None -> Error (Errors.Invalid "bloom: missing hash-count prefix")
      | Some j -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (j - i - 1)) )
        with
        | Some m, Some k when m > 0 && m <= max_bits && k > 0 && k <= 32 ->
          let bits = String.sub s (j + 1) (String.length s - j - 1) in
          if String.length bits <> (m + 7) / 8 then
            Error
              (Errors.Invalid
                 (Printf.sprintf "bloom: %d bits need %d bytes, got %d" m
                    ((m + 7) / 8) (String.length bits)))
          else Ok { bits = Bytes.of_string bits; m; k }
        | _ -> Error (Errors.Invalid "bloom: unparsable geometry prefix")))
end
