module Value = Fb_types.Value
module Hash = Fb_hash.Hash

let tokenize line =
  let n = String.length line in
  let tokens = ref [] and buf = Buffer.create 16 in
  (* [started] marks that a token is in progress even when the buffer is
     empty, so "" yields an empty argument while bare blanks yield none —
     and a closing quote is not a token boundary: "ab"cd is one token. *)
  let started = ref false in
  let flush () =
    if !started || Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf;
      started := false
    end
  in
  let rec plain i =
    if i >= n then (flush (); Ok ())
    else
      match line.[i] with
      | ' ' | '\t' -> (flush (); plain (i + 1))
      | '"' ->
        started := true;
        quoted (i + 1)
      | c ->
        started := true;
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then Error "unterminated quote"
    else
      match line.[i] with
      | '"' -> plain (i + 1)
      | '\\' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | c -> (Buffer.add_char buf c; quoted (i + 1))
  in
  match plain 0 with
  | Ok () -> Ok (List.rev !tokens)
  | Error _ as e -> e

type access = Read | Write
type scope = Key of string | Global

(* The concurrency contract of every verb, used by the network server to
   pick a lock mode: [Read] verbs never move a head nor mutate the chunk
   store, so any number may run at once; [Write] verbs need exclusion.
   The scope narrows the exclusion to one key's stripe when the verb
   names the key it touches; uid-addressed reads ([get-at], [meta]) and
   instance-wide verbs are [Global].  Unknown or malformed verbs classify
   as [(Read, Global)] — they only ever produce an error, and the global
   read side is the safe default for a verb that cannot be identified. *)
let classify tokens =
  match tokens with
  | [] -> (Read, Global)
  | verb :: args -> (
    match String.lowercase_ascii verb, args with
    | ("put" | "put-csv" | "branch" | "merge" | "rename"), key :: _ ->
      (Write, Key key)
    | ("sync-put" | "sync-advance"), key :: _ -> (Write, Key key)
    (* Chunk-level ingest is not key-scoped (cluster members hold an
       arbitrary slice of the graph) — exclude globally.  It stays
       idempotent (content-addressed), which is why transports may
       nevertheless retry it on reconnect. *)
    | "chunk-put", _ -> (Write, Global)
    | "scrub", _ -> (Write, Global)
    | ( ( "get" | "head" | "latest" | "log" | "diff" | "verify" | "prove"
        | "get-json" | "diff-json" | "log-json" | "latest-json" ),
        key :: _ ) ->
      (Read, Key key)
    (* Chunk-addressed sync reads: no key scope, safely retryable. *)
    | ("sync-have" | "sync-get" | "sync-bloom" | "chunk-stat"), _ ->
      (Read, Global)
    | _ -> (Read, Global))

let render_value = function
  | Value.Primitive p -> Fb_types.Primitive.to_string p
  | Value.Table t -> Fb_types.Table.to_csv t
  | Value.Blob b -> Fb_postree.Pblob.to_string b
  | Value.Map m ->
    String.concat "\n"
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%s" k v)
         (Fb_postree.Pmap.bindings m))
  | Value.Set s -> String.concat "\n" (Fb_postree.Pset.elements s)
  | Value.List l -> String.concat "\n" (Fb_postree.Plist.to_list l)

let dispatch ?user fb tokens =
  let ( let* ) = Result.bind in
  let run () =
    match tokens with
    | [] -> Error (Errors.Invalid "empty request")
    | verb :: args -> (
      match String.lowercase_ascii verb, args with
      | "put", [ key; branch; value ] ->
        let* uid = Forkbase.put ?user ~branch fb ~key (Value.string value) in
        Ok (Forkbase.version_string uid)
      | "put-csv", [ key; branch; csv ] ->
        let* uid = Forkbase.import_csv ?user ~branch fb ~key csv in
        Ok (Forkbase.version_string uid)
      | "get", [ key; branch ] ->
        let* value = Forkbase.get ?user ~branch fb ~key in
        Ok (render_value value)
      | "get-at", [ uid ] ->
        let* uid = Forkbase.parse_version uid in
        let* value = Forkbase.get_at ?user fb uid in
        Ok (render_value value)
      | "head", [ key; branch ] ->
        let* uid = Forkbase.head ?user ~branch fb ~key in
        Ok (Forkbase.version_string uid)
      | "latest", [ key ] ->
        let* heads = Forkbase.latest ?user fb ~key in
        Ok
          (String.concat "\n"
             (List.map
                (fun (b, uid) ->
                  Printf.sprintf "%s %s" b (Forkbase.version_string uid))
                heads))
      | "list", [] -> Ok (String.concat "\n" (Forkbase.list_keys ?user fb))
      | "log", [ key; branch ] ->
        let* nodes = Forkbase.log ?user ~branch fb ~key in
        Ok
          (String.concat "\n"
             (List.map
                (fun (f : Fb_repr.Fnode.t) ->
                  Printf.sprintf "%s %d %s %s"
                    (Forkbase.version_string (Fb_repr.Fnode.uid f))
                    f.Fb_repr.Fnode.seq f.Fb_repr.Fnode.author
                    f.Fb_repr.Fnode.message)
                nodes))
      | "branch", [ key; from_branch; new_branch ] ->
        let* uid = Forkbase.fork ?user ~from_branch fb ~key ~new_branch in
        Ok (Forkbase.version_string uid)
      | "rename", [ key; from_branch; to_branch ] ->
        let* () = Forkbase.rename_branch ?user fb ~key ~from_branch ~to_branch in
        Ok ""
      | "meta", [ uid ] ->
        let* uid = Forkbase.parse_version uid in
        let* f = Forkbase.meta ?user fb uid in
        Ok
          (Printf.sprintf "key: %s\nseq: %d\nauthor: %s\nmessage: %s\nbases:%s"
             f.Fb_repr.Fnode.key f.Fb_repr.Fnode.seq f.Fb_repr.Fnode.author
             f.Fb_repr.Fnode.message
             (String.concat ""
                (List.map
                   (fun b -> "\n  " ^ Forkbase.version_string b)
                   f.Fb_repr.Fnode.bases)))
      | "diff", [ key; branch1; branch2 ] ->
        let* d = Forkbase.diff ?user fb ~key ~branch1 ~branch2 in
        Ok
          (Diffview.summary d ^ "\n"
           ^ Format.asprintf "%a" Diffview.render d)
      | "merge", [ key; into; from_branch ] ->
        let* uid = Forkbase.merge ?user fb ~key ~into ~from_branch in
        Ok (Forkbase.version_string uid)
      | "verify", [ key; branch ] ->
        let* report = Forkbase.verify_branch ?user fb ~key ~branch in
        Ok
          (Printf.sprintf "%d versions %d chunks"
             report.Fb_repr.Verify.versions_checked
             report.Fb_repr.Verify.value_chunks)
      | "stat", [] ->
        let s = Forkbase.stats fb in
        Ok
          (Printf.sprintf "keys=%d branches=%d versions=%d physical=%d"
             s.Forkbase.keys s.Forkbase.branches s.Forkbase.versions
             s.Forkbase.store.Fb_chunk.Store.physical_bytes)
      | "metrics", [] -> Ok (Fb_obs.Obs.dump_prometheus ())
      | "metrics-json", [] ->
        (* Buckets ride along so a remote consumer (forkbase top) can
           rebuild snapshots and compute interval quantiles. *)
        Ok (Fb_obs.Obs.dump_json ~include_spans:true ~include_buckets:true ())
      | "fsck", [] ->
        let report = Forkbase.scrub ~dry_run:true fb in
        Ok (Format.asprintf "%a" Fb_chunk.Scrub.pp_report report)
      | "scrub", [] ->
        let report = Forkbase.scrub fb in
        Ok (Format.asprintf "%a" Fb_chunk.Scrub.pp_report report)
      (* JSON variants: the bodies a REST gateway returns verbatim. *)
      | "get-json", [ key; branch ] ->
        let* value = Forkbase.get ?user ~branch fb ~key in
        Ok (Fb_types.Json.to_string (Webview.value_json value))
      | "diff-json", [ key; branch1; branch2 ] ->
        let* d = Forkbase.diff ?user fb ~key ~branch1 ~branch2 in
        Ok (Fb_types.Json.to_string (Webview.diff_json d))
      | "log-json", [ key; branch ] ->
        let* nodes = Forkbase.log ?user ~branch fb ~key in
        Ok (Fb_types.Json.to_string (Webview.log_json nodes))
      | "stat-json", [] ->
        Ok (Fb_types.Json.to_string (Webview.stats_json (Forkbase.stats fb)))
      | "latest-json", [ key ] ->
        let* heads = Forkbase.latest ?user fb ~key in
        Ok (Fb_types.Json.to_string (Webview.branches_json heads))
      (* Delta-sync verbs (PUSH/PULL sessions).  Ids travel as hex; chunk
         bytes ride in a raw binary token — the v2 framing is
         length-prefixed, so no escaping is needed. *)
      | "sync-have", (_ :: _ as ids) ->
        let* ids =
          List.fold_left
            (fun acc hex ->
              let* acc = acc in
              match Hash.of_hex hex with
              | Ok id -> Ok (id :: acc)
              | Error _ -> Errors.invalid "sync-have: bad chunk id %S" hex)
            (Ok []) ids
        in
        let* bits = Forkbase.sync_have ?user fb (List.rev ids) in
        Ok (Sync.encode_have bits)
      | "sync-get", [ hex ] ->
        let* id =
          match Hash.of_hex hex with
          | Ok id -> Ok id
          | Error _ -> Errors.invalid "sync-get: bad chunk id %S" hex
        in
        Forkbase.sync_chunk ?user fb id
      | "sync-put", [ key; branch; hex; bytes ] ->
        let* id =
          match Hash.of_hex hex with
          | Ok id -> Ok id
          | Error _ -> Errors.invalid "sync-put: bad chunk id %S" hex
        in
        let* _id = Forkbase.sync_put ?user ~branch fb ~key id bytes in
        Ok ""
      (* Chunk-level verbs for cluster storage nodes: verified ingest
         without the closure check (routing spreads children across
         nodes), physical stats, and the whole-store Bloom summary. *)
      | "chunk-put", [ hex; bytes ] ->
        let* id =
          match Hash.of_hex hex with
          | Ok id -> Ok id
          | Error _ -> Errors.invalid "chunk-put: bad chunk id %S" hex
        in
        let* _id = Forkbase.chunk_put ?user fb id bytes in
        Ok ""
      | "chunk-stat", [] ->
        let* s = Forkbase.chunk_stat ?user fb in
        Ok
          (Printf.sprintf "chunks=%d bytes=%d" s.Fb_chunk.Store.physical_chunks
             s.Fb_chunk.Store.physical_bytes)
      | "sync-bloom", [] ->
        let* bloom = Forkbase.sync_bloom ?user fb in
        Ok (Sync.Bloom.encode bloom)
      | "sync-advance", [ key; branch; head ] ->
        let* root = Forkbase.parse_version head in
        let* uid = Forkbase.advance_head ?user ~branch fb ~key root in
        Ok (Forkbase.version_string uid)
      | "prove", [ key; branch; entry_key ] ->
        (* Hex-encoded entry proof a light client verifies offline against
           the branch head uid. *)
        let* proof = Forkbase.prove_entry ?user ~branch fb ~key ~entry_key in
        Ok (Fb_hash.Hex.encode (Forkbase.encode_entry_proof proof))
      | verb, args ->
        Errors.invalid "bad request: %s/%d arguments" verb (List.length args))
  in
  (* Verbs like stat and scrub call non-[result] maintenance APIs, so a
     storage fault can still arrive as an exception here. *)
  try run () with
  | Fb_chunk.Store.Transient msg -> Error (Errors.Transient msg)
  | Fb_postree.Postree.Corrupt msg -> Error (Errors.Corrupt msg)

let handle ?user fb line =
  let reply = function
    | Ok "" -> "OK"
    | Ok payload -> "OK " ^ payload
    | Error e -> "ERR " ^ Errors.to_string e
  in
  match tokenize line with
  | Error e -> "ERR " ^ Errors.to_string (Errors.Invalid e)
  | Ok tokens -> reply (dispatch ?user fb tokens)
