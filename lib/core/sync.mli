(** Merkle-DAG delta sync — the pure pieces shared by both ends of a
    PUSH/PULL session (ROADMAP item 4; the Fossil tip-exchange protocol
    over ForkBase's content-addressed chunks).

    A sync session exchanges branch heads, walks the version DAG and
    POS-Tree structure from each head to find the {e missing-chunk
    frontier} — descent stops at any chunk the peer already has, because
    content addressing makes an equal id an equal subtree — and streams
    only the frontier chunks.  The receiver re-hashes every chunk
    ({!verify_encoded}) and refuses mismatches, so a replica built over
    sync carries the same tamper-evidence as a local store.

    The wire verbs themselves live in {!Service} (sync-have / sync-get /
    sync-put / sync-advance); the client-side walk lives in
    [Fb_net.Remote.push]/[pull].  This module holds what both ends and
    their tests share: verification, ordering, and the have-bitmap
    codec. *)

type stats = {
  chunks_moved : int;   (** chunks that crossed the wire *)
  bytes_moved : int;    (** their encoded bytes — the delta-sync payoff *)
  chunks_skipped : int; (** frontier cuts: probed chunks the peer already had *)
  rounds : int;         (** request round trips (probes + transfers + advance) *)
  bloom_fp : int;
      (** bloom-positive ids the exact confirmation wave revealed absent —
          each one is a probe the filter failed to save, never a wrongly
          skipped chunk (positives are always confirmed exactly) *)
}

val empty_stats : stats

(** {1 Batch shaping} *)

val have_batch : int
(** Ids per sync-have probe request. *)

val get_batch : int
(** sync-get sub-requests per BATCH frame. *)

val put_batch : int
val put_batch_bytes : int
(** sync-put sub-requests per BATCH frame are capped by count {e and}
    cumulative encoded bytes, so a batch stays well under the frame
    ceiling. *)

val children : Fb_chunk.Chunk.t -> Fb_hash.Hash.t list
(** Chunk-level children for the frontier walk: FNode bases + value
    roots, POS-Tree index fan-out, nothing for leaves (alias of
    {!Fb_repr.Dag.fnode_children}). *)

val verify_encoded :
  Fb_hash.Hash.t -> string -> (Fb_chunk.Chunk.t, Errors.t) result
(** [verify_encoded id bytes] re-hashes [bytes] and decodes them: the
    result is [Ok chunk] only when the bytes really are the chunk named
    [id].  [Error (Corrupt _)] otherwise — the ingest gate both ends
    apply to every received chunk. *)

val plan_order :
  children:(Fb_hash.Hash.t -> Fb_hash.Hash.t list) ->
  missing:(Fb_hash.Hash.t -> bool) ->
  roots:Fb_hash.Hash.t list ->
  Fb_hash.Hash.t list
(** Child-first order of the subgraph of [missing] ids reachable from
    [roots]: every id appears after all of its missing children.
    Streaming in this order lets the receiver maintain the closure
    invariant (no stored chunk ever references an absent one) by
    checking only the incoming chunk's direct children. *)

(** {1 Have-bitmap codec} *)

val encode_have : bool list -> string
(** One byte per probed id, ['1'] = held, positional. *)

val decode_have : string -> (bool list, Errors.t) result

(** {1 Bloom-filter have-exchange}

    One [sync-bloom] round replaces many 256-id probe waves: the peer
    summarises every chunk reachable from its branch heads in a sized
    Bloom filter; the sender tests its frontier locally.  Negatives are
    definitive misses (send the chunk); positives are only {e probably}
    held, so they are confirmed with exact {!encode_have} waves before
    being skipped — correctness never rests on the filter.  When a
    filter arrives saturated (fill ratio past 1/2) the sender ignores it
    and falls back to exact waves entirely. *)
module Bloom : sig
  type t

  val bits_per_chunk : int
  (** Filter sizing: 10 bits per expected chunk ⇒ ~1% fp at design load. *)

  val hashes : int
  (** Double-hashing probe count (7). *)

  val create : expected:int -> t
  (** A filter sized for [expected] chunks ([bits_per_chunk] each,
      clamped to \[64 bits, 8 MiB\]). *)

  val add : t -> Fb_hash.Hash.t -> unit
  val mem : t -> Fb_hash.Hash.t -> bool
  val m : t -> int
  val k : t -> int

  val fill_ratio : t -> float
  val saturated : t -> bool
  (** Fill ratio past 0.5 — past design load, false positives dominate
      and exact waves are cheaper than confirmations. *)

  val encode : t -> string
  (** ["m:k:" ^ bits] — geometry travels with the filter. *)

  val decode : string -> (t, Errors.t) result
end
