(* forkbase — command-line front end (the "Command Line scripting" semantic
   view of Fig. 1).

   State layout under --root (default ./.forkbase):
     log/       crash-consistent append-only pack log (Fb_chunk.Log_store;
                the default engine for fresh roots)
     chunks/    content-addressed chunk files (Fb_chunk.File_store)
     BRANCHES   serialized branch table (the client-side head record that
                the tamper-evidence threat model assumes users keep) *)

open Cmdliner
module FB = Fb_core.Forkbase
module Value = Fb_types.Value
module Errors = Fb_core.Errors
module Branch = Fb_repr.Branch
module Hash = Fb_hash.Hash

(* Every provider in the registry must be visible before any --backend
   resolves; the cluster provider lives in Fb_net and registers here
   rather than at module init so linking order never decides whether
   "cluster" exists. *)
let () = Fb_net.Cluster.register_provider ()

let with_instance ?backend ?params root f =
  match
    Fb_core.Persistent.with_instance ?backend ?params ~root (fun fb -> f fb)
  with
  | Ok msg ->
    print_string msg;
    `Ok ()
  | Error e -> `Error (false, Errors.to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------- common args ------------------------- *)

let root_arg =
  let doc = "Directory holding the ForkBase store." in
  Arg.(value & opt string ".forkbase" & info [ "root" ] ~docv:"DIR" ~doc)

let branch_arg =
  let doc = "Branch to operate on." in
  Arg.(value & opt string Branch.default_branch & info [ "b"; "branch" ] ~docv:"BRANCH" ~doc)

let user_arg =
  let doc = "Acting user (for access control and authorship)." in
  Arg.(value & opt string "anonymous" & info [ "u"; "user" ] ~docv:"USER" ~doc)

let message_arg =
  let doc = "Commit message." in
  Arg.(value & opt string "put" & info [ "m"; "message" ] ~docv:"MSG" ~doc)

let key_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY")

let ( let* ) = Result.bind

(* ------------------------- commands ------------------------- *)

let render_value = function
  | Value.Primitive p -> Fb_types.Primitive.to_string p ^ "\n"
  | Value.Blob b -> Fb_postree.Pblob.to_string b
  | Value.Table t -> Fb_types.Table.to_csv t
  | Value.Map m ->
    String.concat ""
      (List.map
         (fun (k, v) -> Printf.sprintf "%s\t%s\n" k v)
         (Fb_postree.Pmap.bindings m))
  | Value.Set s ->
    String.concat ""
      (List.map (fun e -> e ^ "\n") (Fb_postree.Pset.elements s))
  | Value.List l ->
    String.concat ""
      (List.map (fun e -> e ^ "\n") (Fb_postree.Plist.to_list l))

let put_cmd =
  let value_arg =
    Arg.(value & opt (some string) None
         & info [ "value" ] ~docv:"STRING" ~doc:"Store a string primitive.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Import $(docv) as a relational table.")
  in
  let blob_arg =
    Arg.(value & opt (some string) None
         & info [ "blob" ] ~docv:"FILE" ~doc:"Store $(docv)'s bytes as a blob.")
  in
  let run root user message branch key value csv blob =
    with_instance root (fun fb ->
        let* uid =
          match value, csv, blob with
          | Some s, None, None ->
            FB.put ~user ~message ~branch fb ~key (Value.string s)
          | None, Some file, None ->
            FB.import_csv ~user ~message ~branch fb ~key (read_file file)
          | None, None, Some file ->
            FB.put ~user ~message ~branch fb ~key
              (Value.blob_of_string (FB.store fb) (read_file file))
          | _ ->
            Errors.invalid "pass exactly one of --value, --csv, --blob"
        in
        Ok (Printf.sprintf "%s\n" (FB.version_string uid)))
  in
  let info = Cmd.info "put" ~doc:"Append a new version of KEY to a branch." in
  Cmd.v info
    Term.(ret (const run $ root_arg $ user_arg $ message_arg $ branch_arg
               $ key_pos $ value_arg $ csv_arg $ blob_arg))

let get_cmd =
  let version_arg =
    Arg.(value & opt (some string) None
         & info [ "uid" ] ~docv:"UID" ~doc:"Read a specific version instead of a branch head.")
  in
  let run root user branch key version =
    with_instance root (fun fb ->
        let* value =
          match version with
          | None -> FB.get ~user ~branch fb ~key
          | Some v ->
            let* uid = FB.parse_version v in
            FB.get_at ~user fb uid
        in
        Ok (render_value value))
  in
  let info = Cmd.info "get" ~doc:"Print the value of KEY (head or --version)." in
  Cmd.v info
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ version_arg))

let head_cmd =
  let run root user branch key =
    with_instance root (fun fb ->
        let* uid = FB.head ~user ~branch fb ~key in
        Ok (FB.version_string uid ^ "\n"))
  in
  Cmd.v (Cmd.info "head" ~doc:"Print the head version of KEY on a branch.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos))

let latest_cmd =
  let run root user key =
    with_instance root (fun fb ->
        let* heads = FB.latest ~user fb ~key in
        Ok
          (String.concat ""
             (List.map
                (fun (b, uid) ->
                  Printf.sprintf "%-20s %s\n" b (FB.version_string uid))
                heads)))
  in
  Cmd.v (Cmd.info "latest" ~doc:"List every branch head of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos))

let list_cmd =
  let run root user =
    with_instance root (fun fb ->
        Ok (String.concat "" (List.map (fun k -> k ^ "\n") (FB.list_keys ~user fb))))
  in
  Cmd.v (Cmd.info "list" ~doc:"List all keys.")
    Term.(ret (const run $ root_arg $ user_arg))

let log_cmd =
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "n"; "limit" ] ~docv:"N" ~doc:"Show at most $(docv) versions.")
  in
  let run root user branch key limit =
    with_instance root (fun fb ->
        let* nodes = FB.log ~user ~branch ?limit fb ~key in
        Ok
          (String.concat ""
             (List.map
                (fun (f : Fb_repr.Fnode.t) ->
                  Printf.sprintf "%s  seq=%-4d %-12s %s\n"
                    (FB.version_string (Fb_repr.Fnode.uid f))
                    f.Fb_repr.Fnode.seq f.Fb_repr.Fnode.author
                    f.Fb_repr.Fnode.message)
                nodes)))
  in
  Cmd.v (Cmd.info "log" ~doc:"Show the version history of KEY on a branch.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ limit_arg))

let meta_cmd =
  let version_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"UID")
  in
  let run root user key version =
    with_instance root (fun fb ->
        let* uid = FB.parse_version version in
        let* f = FB.meta ~user fb uid in
        if not (String.equal f.Fb_repr.Fnode.key key) then
          Errors.invalid "version belongs to key %S" f.Fb_repr.Fnode.key
        else
          Ok
            (Printf.sprintf "key: %s\nseq: %d\nauthor: %s\nmessage: %s\nbases:%s\n"
               f.Fb_repr.Fnode.key f.Fb_repr.Fnode.seq f.Fb_repr.Fnode.author
               f.Fb_repr.Fnode.message
               (String.concat ""
                  (List.map
                     (fun b -> "\n  " ^ FB.version_string b)
                     f.Fb_repr.Fnode.bases))))
  in
  Cmd.v (Cmd.info "meta" ~doc:"Show metadata of a version of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos $ version_pos))

let branch_cmd =
  let new_branch_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW-BRANCH")
  in
  let from_arg =
    Arg.(value & opt string Branch.default_branch
         & info [ "from" ] ~docv:"BRANCH" ~doc:"Branch to fork from.")
  in
  let at_arg =
    Arg.(value & opt (some string) None
         & info [ "at" ] ~docv:"UID" ~doc:"Fork from a historical version.")
  in
  let run root user key new_branch from_branch at =
    with_instance root (fun fb ->
        let* uid =
          match at with
          | None -> FB.fork ~user ~from_branch fb ~key ~new_branch
          | Some v ->
            let* uid = FB.parse_version v in
            FB.fork_at ~user fb ~key ~new_branch uid
        in
        Ok (Printf.sprintf "%s -> %s\n" new_branch (FB.version_string uid)))
  in
  Cmd.v
    (Cmd.info "branch"
       ~doc:"Create NEW-BRANCH of KEY from a head (or --at a version); O(1), \
             no data copied.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos $ new_branch_pos
               $ from_arg $ at_arg))

let rename_cmd =
  let from_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FROM") in
  let to_pos = Arg.(required & pos 2 (some string) None & info [] ~docv:"TO") in
  let run root user key from_branch to_branch =
    with_instance root (fun fb ->
        let* () = FB.rename_branch ~user fb ~key ~from_branch ~to_branch in
        Ok "")
  in
  Cmd.v (Cmd.info "rename" ~doc:"Rename a branch of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos $ from_pos $ to_pos))

let delete_branch_cmd =
  let run root user branch key =
    with_instance root (fun fb ->
        let* () = FB.delete_branch ~user fb ~key ~branch in
        Ok "")
  in
  Cmd.v (Cmd.info "delete-branch" ~doc:"Delete a branch of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos))

let diff_cmd =
  let b1_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"BRANCH1") in
  let b2_pos = Arg.(required & pos 2 (some string) None & info [] ~docv:"BRANCH2") in
  let run root user key branch1 branch2 =
    with_instance root (fun fb ->
        let* d = FB.diff ~user fb ~key ~branch1 ~branch2 in
        Ok
          (Printf.sprintf "%s\n%s" (Fb_core.Diffview.summary d)
             (Format.asprintf "%a" Fb_core.Diffview.render d)))
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Differential query between two branches of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos $ b1_pos $ b2_pos))

let merge_cmd =
  let from_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FROM") in
  let into_arg =
    Arg.(value & opt string Branch.default_branch
         & info [ "into" ] ~docv:"BRANCH" ~doc:"Branch receiving the merge.")
  in
  let strategy_conv =
    Arg.enum
      [ ("fail", FB.Fail_on_conflict); ("ours", FB.Prefer_ours);
        ("theirs", FB.Prefer_theirs) ]
  in
  let strategy_arg =
    Arg.(value & opt strategy_conv FB.Fail_on_conflict
         & info [ "strategy" ] ~docv:"fail|ours|theirs"
             ~doc:"Conflict resolution strategy.")
  in
  let run root user key from_branch into strategy =
    with_instance root (fun fb ->
        let* uid = FB.merge ~user ~strategy fb ~key ~into ~from_branch in
        Ok (FB.version_string uid ^ "\n"))
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Three-way merge of FROM into --into (default master).")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos $ from_pos $ into_arg
               $ strategy_arg))

let verify_cmd =
  let version_arg =
    Arg.(value & opt (some string) None
         & info [ "uid" ] ~docv:"UID" ~doc:"Verify a specific version.")
  in
  let deep_arg =
    Arg.(value & flag
         & info [ "deep" ] ~doc:"Also re-hash every historical value.")
  in
  let run root user branch key version deep =
    with_instance root (fun fb ->
        let* report =
          match version with
          | Some v ->
            let* uid = FB.parse_version v in
            FB.verify ~user ~check_history_values:deep fb uid
          | None ->
            let* uid = FB.head ~user ~branch fb ~key in
            FB.verify ~user ~check_history_values:deep fb uid
        in
        Ok
          (Printf.sprintf
             "ok: %d versions and %d value chunks re-hashed and matched\n"
             report.Fb_repr.Verify.versions_checked
             report.Fb_repr.Verify.value_chunks))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Tamper-evidence check: recompute all Merkle hashes of KEY's \
             head (or --version) and compare with the stored identifiers.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ version_arg $ deep_arg))

let export_cmd =
  let run root user branch key =
    with_instance root (fun fb ->
        let* csv = FB.export_csv ~user ~branch fb ~key in
        Ok csv)
  in
  Cmd.v (Cmd.info "export" ~doc:"Export a table-valued KEY as CSV on stdout.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos))

let bundle_cmd =
  let out_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run root user branch key out =
    with_instance root (fun fb ->
        let* bundle = FB.export_bundle ~user ~branch fb ~key in
        let oc = open_out_bin out in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc bundle);
        Ok (Printf.sprintf "%d bytes written to %s\n" (String.length bundle) out))
  in
  Cmd.v
    (Cmd.info "bundle"
       ~doc:"Pack KEY's branch head and its full history into FILE for \
             exchange.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ out_pos))

let unbundle_cmd =
  let in_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run root user branch key file =
    with_instance root (fun fb ->
        let* uid = FB.import_bundle ~user ~branch fb ~key (read_file file) in
        Ok (FB.version_string uid ^ "\n"))
  in
  Cmd.v
    (Cmd.info "unbundle"
       ~doc:"Verify and import a bundle FILE, fast-forwarding KEY's branch.")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ in_pos))

let stat_cmd =
  let run root user =
    with_instance root (fun fb ->
        ignore user;
        let s = FB.stats fb in
        Ok
          (Format.asprintf
             "keys: %d@.branches: %d@.versions: %d@.%a@."
             s.FB.keys s.FB.branches s.FB.versions Fb_chunk.Store.pp_stats
             s.FB.store))
  in
  Cmd.v (Cmd.info "stat" ~doc:"Storage and versioning statistics.")
    Term.(ret (const run $ root_arg $ user_arg))

let history_cmd =
  let row_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"ROW") in
  let run root user branch key row =
    with_instance root (fun fb ->
        let* events = FB.row_history ~user ~branch fb ~key ~row in
        Ok
          (String.concat ""
             (List.map
                (fun (e : FB.row_event) ->
                  let what =
                    match e.FB.change with
                    | Fb_types.Table.Row_added _ -> "added"
                    | Fb_types.Table.Row_removed _ -> "removed"
                    | Fb_types.Table.Row_modified (_, cells) ->
                      Printf.sprintf "modified (%s)"
                        (String.concat ", "
                           (List.map
                              (fun (c : Fb_types.Table.cell_change) ->
                                c.Fb_types.Table.column)
                              cells))
                  in
                  Printf.sprintf "%s  seq=%-4d %-10s %-28s %s\n"
                    (String.sub (FB.version_string e.FB.version) 0 16)
                    e.FB.seq e.FB.author what e.FB.message)
                events)))
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Provenance of one ROW of a table-valued KEY: every version \
             that added, removed or modified it (git blame for data).")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ row_pos))

let tag_cmd =
  let name_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  let at_arg =
    Arg.(value & opt (some string) None
         & info [ "at" ] ~docv:"UID" ~doc:"Tag a specific version (default: the branch head).")
  in
  let run root user branch key name at =
    with_instance root (fun fb ->
        let* uid =
          match at with
          | Some v -> FB.parse_version v
          | None -> FB.head ~user ~branch fb ~key
        in
        let* () = FB.tag ~user fb ~key ~name uid in
        Ok (Printf.sprintf "%s -> %s\n" name (FB.version_string uid)))
  in
  Cmd.v
    (Cmd.info "tag"
       ~doc:"Attach an immutable NAME to a version of KEY (a release \
             pointer; protects it from gc).")
    Term.(ret (const run $ root_arg $ user_arg $ branch_arg $ key_pos
               $ name_pos $ at_arg))

let tags_cmd =
  let run root user key =
    with_instance root (fun fb ->
        Ok
          (String.concat ""
             (List.map
                (fun (name, uid) ->
                  Printf.sprintf "%-20s %s\n" name (FB.version_string uid))
                (FB.tags ~user fb ~key))))
  in
  Cmd.v (Cmd.info "tags" ~doc:"List the tags of KEY.")
    Term.(ret (const run $ root_arg $ user_arg $ key_pos))

let backend_arg =
  (* A provider name, resolved through the store-provider registry at
     open time — an unknown name reports the registered set, so the doc
     here never goes stale as providers register. *)
  Arg.(value & opt string "auto"
       & info [ "backend" ] ~docv:"NAME"
           ~doc:"Chunk engine, by store-provider name: $(b,log) is the \
                 crash-consistent append-only pack log, $(b,file) is one \
                 file per chunk, $(b,mem) is ephemeral, $(b,cluster) \
                 routes chunks to forkbase serve nodes (see $(b,--nodes) \
                 and $(b,forkbase cluster)), and $(b,auto) (default) keeps \
                 whatever the root already uses — picking $(b,log) for \
                 fresh roots.")

let nodes_arg =
  Arg.(value & opt (some string) None
       & info [ "nodes" ] ~docv:"HOST:PORT,…"
           ~doc:"Cluster members for $(b,--backend cluster) (falls back \
                 to the ROOT/CLUSTER file written by $(b,forkbase cluster \
                 start)).")

let replicas_arg =
  Arg.(value & opt (some int) None
       & info [ "replicas" ] ~docv:"W"
           ~doc:"Copies of each chunk on the cluster hash ring (default 2, \
                 clamped to the node count).")

(* --nodes / --replicas travel to the provider as free-form params; only
   the cluster provider reads them today, and unknown params are ignored
   by design. *)
let provider_params nodes replicas =
  (match nodes with Some n -> [ ("nodes", n) ] | None -> [])
  @ (match replicas with
    | Some w -> [ ("replicas", string_of_int w) ]
    | None -> [])

let fsync_arg =
  Arg.(value & opt bool true
       & info [ "fsync" ] ~docv:"BOOL"
           ~doc:"Force chunk writes and table saves to stable storage \
                 before acknowledging them (default on: a power cut must \
                 not lose acknowledged data).  $(b,--fsync=false) trades \
                 that guarantee for throughput.")

let port_arg =
  let doc = "TCP port (0 picks an ephemeral port)." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let host_arg ~doc =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let serve_cmd =
  let stdio_arg =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve the legacy line protocol on stdin/stdout instead \
                   of TCP (single client; payloads with newlines are \
                   ambiguous — prefer the framed TCP transport).")
  in
  let save_every_arg =
    Arg.(value & opt float 5.0
         & info [ "save-every" ] ~docv:"SECONDS"
             ~doc:"Persist the branch/tag tables every $(docv) seconds \
                   (and always on shutdown); 0 disables the periodic save.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-frame read deadline; a peer that stalls longer is \
                   disconnected.  0 disables.")
  in
  let max_frame_arg =
    Arg.(value & opt int Fb_net.Frame.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Largest accepted request frame.")
  in
  let coarse_arg =
    Arg.(value & flag
         & info [ "coarse" ]
             ~doc:"Serialize every request under one global lock instead \
                   of the striped read/write locking (debugging and A/B \
                   benchmarking escape hatch).")
  in
  let metrics_port_arg =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"Also serve HTTP telemetry on $(docv) (0 picks an \
                   ephemeral port): /metrics (Prometheus), /healthz, \
                   /tracez (recent slow traces), /trace.json (Chrome \
                   trace of the span ring).")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log requests taking $(docv) ms or more (structured \
                   Warn event + span tree kept for /tracez).  Default: \
                   the FB_SLOW_MS environment variable, else disabled.")
  in
  let threaded_arg =
    Arg.(value & flag
         & info [ "threaded" ]
             ~doc:"Serve with the thread-per-connection engine instead \
                   of the event loop (A/B benchmarking and escape hatch; \
                   SUBSCRIBE push is unavailable in this mode).")
  in
  let workers_arg =
    Arg.(value & opt int Fb_net.Server.default_config.workers
         & info [ "workers" ] ~docv:"N"
             ~doc:"Event loop: dispatch worker threads.")
  in
  let max_outbox_arg =
    Arg.(value & opt int Fb_net.Server.default_config.max_outbox
         & info [ "max-outbox" ] ~docv:"BYTES"
             ~doc:"Event loop: per-connection reply backlog before the \
                   server stops reading from that connection \
                   (backpressure on slow consumers).")
  in
  let write_stall_arg =
    Arg.(value & opt float Fb_net.Server.default_config.write_stall_s
         & info [ "write-stall" ] ~docv:"SECONDS"
             ~doc:"Event loop: disconnect a peer whose pending replies \
                   make no write progress for $(docv) seconds; 0 \
                   disables.")
  in
  let run root user port host stdio save_every timeout max_frame coarse
      backend nodes replicas fsync metrics_port slow_ms threaded workers
      max_outbox write_stall =
    (* The log engine runs its background thread under the daemon: aged
       group-commit batches are flushed and garbage-heavy generations
       compacted without any client on the line. *)
    let log_config =
      { Fb_chunk.Log_store.default_config with compactor = true }
    in
    let params = provider_params nodes replicas in
    if stdio then
      match
        Fb_core.Persistent.open_ ~fsync ~backend ~log_config ~params ~root ()
      with
      | Error e -> `Error (false, Errors.to_string e)
      | Ok fb ->
        (* Line-oriented request/response loop on stdin/stdout — the
           semantic view a REST gateway would wrap (see Fb_core.Service). *)
        let rec loop () =
          match In_channel.input_line stdin with
          | None -> ()
          | Some "" -> loop ()
          | Some line ->
            print_endline (Fb_core.Service.handle ~user fb line);
            flush stdout;
            ignore (Fb_core.Persistent.save ~fsync ~root fb);
            loop ()
        in
        loop ();
        Fb_core.Persistent.close ~root;
        `Ok ()
    else
      (* Durable daemon: fsync chunk writes and table saves — a SIGTERM
         (or power cut) must leave the branch table intact. *)
      match
        Fb_core.Persistent.open_ ~fsync ~backend ~log_config ~params ~root ()
      with
      | Error e -> `Error (false, Errors.to_string e)
      | Ok fb ->
        let save () = ignore (Fb_core.Persistent.save ~fsync ~root fb) in
        let config =
          { Fb_net.Server.default_config with
            host; port; default_user = user; save_every_s = save_every;
            read_timeout_s = timeout; max_frame;
            concurrency = (if coarse then `Coarse else `Striped);
            metrics_port;
            slow_ms =
              Option.value slow_ms
                ~default:Fb_net.Server.default_config.slow_ms;
            mode = (if threaded then `Threaded else `Event);
            workers; max_outbox; write_stall_s = write_stall }
        in
        (match Fb_net.Server.start ~config ~save fb with
        | Error e -> `Error (false, e)
        | Ok srv ->
          Printf.printf "forkbase: serving %s on %s:%d%s (SIGINT/SIGTERM to stop)\n%!"
            root host (Fb_net.Server.port srv)
            (match Fb_net.Server.metrics_port srv with
             | Some mp -> Printf.sprintf ", metrics on http://%s:%d" host mp
             | None -> "");
          Fb_net.Server.run srv;
          Fb_core.Persistent.close ~root;
          Printf.printf "forkbase: shut down cleanly\n%!";
          `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the ForkBase verbs (PUT/GET/DIFF/MERGE/...) to \
             concurrent TCP clients over the length-prefixed binary \
             framing, or on stdin/stdout with $(b,--stdio).")
    Term.(ret (const run $ root_arg $ user_arg $ port_arg
               $ host_arg ~doc:"Address to bind." $ stdio_arg
               $ save_every_arg $ timeout_arg $ max_frame_arg $ coarse_arg
               $ backend_arg $ nodes_arg $ replicas_arg $ fsync_arg
               $ metrics_port_arg $ slow_ms_arg
               $ threaded_arg $ workers_arg $ max_outbox_arg
               $ write_stall_arg))

let client_cmd =
  let request_pos =
    Arg.(value & pos_all string []
         & info [] ~docv:"VERB [ARG...]"
             ~doc:"One request; with no positional arguments, read \
                   request lines from stdin (a REPL against the server).")
  in
  (* Built on the typed Remote handle: errors arrive as Errors.t and are
     rendered to strings only here, at the stdio edge. *)
  let run host port user tokens =
    match Fb_net.Remote.connect ~host ~port ~user () with
    | Error e -> `Error (false, Errors.to_string e)
    | Ok r ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Remote.close r)
        (fun () ->
          match tokens with
          | _ :: _ -> (
            match Fb_net.Remote.raw r tokens with
            | Ok "" -> `Ok ()
            | Ok payload ->
              print_string payload;
              if payload.[String.length payload - 1] <> '\n' then
                print_newline ();
              `Ok ()
            | Error e -> `Error (false, Errors.to_string e))
          | [] ->
            let rec loop () =
              match In_channel.input_line stdin with
              | None -> `Ok ()
              | Some "" -> loop ()
              | Some line ->
                (match Fb_net.Remote.raw_line r line with
                | Ok "" -> print_endline "OK"
                | Ok payload -> print_endline ("OK " ^ payload)
                | Error e -> print_endline ("ERR " ^ Errors.to_string e));
                flush stdout;
                if Fb_net.Remote.is_open r then loop () else `Ok ()
            in
            loop ())
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running $(b,forkbase serve): one request \
             from the command line (e.g. $(b,forkbase client get k \
             master)), or a stdin REPL when no request is given.")
    Term.(ret (const run $ host_arg ~doc:"Server address." $ port_arg
               $ user_arg $ request_pos))

let watch_cmd =
  let key_pos =
    Arg.(value & pos 0 string "*"
         & info [] ~docv:"KEY" ~doc:"Key to watch ($(b,*) for all keys).")
  in
  let branch_pos =
    Arg.(value & pos 1 string "*"
         & info [] ~docv:"BRANCH"
             ~doc:"Branch to watch ($(b,*) for all branches).")
  in
  let run host port user key branch =
    match Fb_net.Remote.connect ~host ~port ~user () with
    | Error e -> `Error (false, Errors.to_string e)
    | Ok r ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Remote.close r)
        (fun () ->
          let render (ev : Fb_core.Forkbase.head_event) =
            Printf.printf "%s %s %s%s\n%!" ev.key ev.branch
              (Fb_core.Forkbase.version_string ev.new_head)
              (match ev.old_head with
               | Some old ->
                 " (was " ^ Fb_core.Forkbase.version_string old ^ ")"
               | None -> " (created)")
          in
          let render_event = function
            | Fb_net.Remote.Head_moved ev -> render ev
            | Fb_net.Remote.Gap { resubscribed } ->
              (* Updates may have been missed across the reconnect; tell
                 the consumer on stderr so the stdout stream stays
                 machine-parsable. *)
              Printf.eprintf "forkbase: %s\n%!"
                (if resubscribed then
                   "reconnected; updates may have been missed (resync)"
                 else "reconnected but resubscription failed; retrying")
          in
          match Fb_net.Remote.subscribe_events ~key ~branch r render_event with
          | Error e -> `Error (false, Errors.to_string e)
          | Ok _sid ->
            Printf.eprintf "forkbase: watching key=%s branch=%s on %s:%d \
                            (Ctrl-C to stop)\n%!" key branch host port;
            (* Head events print from the connection's reader thread;
               this thread just waits for the connection (or the user)
               to end. *)
            let stop = ref false in
            let finish _ = stop := true in
            Sys.set_signal Sys.sigint (Sys.Signal_handle finish);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle finish);
            while (not !stop) && Fb_net.Remote.is_open r do
              Thread.delay 0.2
            done;
            if not (Fb_net.Remote.is_open r) && not !stop then
              `Error (false, "connection closed by server")
            else `Ok ())
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Subscribe to branch-head movements on a running $(b,forkbase \
             serve) (event-loop mode) and print one line per update: \
             $(i,KEY BRANCH NEW-VERSION (was OLD-VERSION)).")
    Term.(ret (const run $ host_arg ~doc:"Server address." $ port_arg
               $ user_arg $ key_pos $ branch_pos))

(* push/pull: Merkle-DAG delta sync between the local --root instance
   and a running server.  Only chunks the other side lacks cross the
   wire; every ingested chunk is re-hashed against its announced id. *)

let sync_branch_pos =
  Arg.(value & pos 1 string Branch.default_branch
       & info [] ~docv:"BRANCH" ~doc:"Branch to sync.")

let render_sync_stats verb uid (s : Fb_core.Sync.stats) =
  Printf.sprintf
    "%s %s: %d chunks / %d bytes on wire, %d shared chunks skipped, %d \
     round trips\n"
    verb
    (Fb_core.Forkbase.version_string uid)
    s.Fb_core.Sync.chunks_moved s.Fb_core.Sync.bytes_moved
    s.Fb_core.Sync.chunks_skipped s.Fb_core.Sync.rounds

let sync_cmd name ~doc ~verb sync =
  let run root host port user key branch =
    match Fb_net.Remote.connect ~host ~port ~user () with
    | Error e -> `Error (false, Errors.to_string e)
    | Ok r ->
      Fun.protect
        ~finally:(fun () -> Fb_net.Remote.close r)
        (fun () ->
          with_instance root (fun fb ->
              let* uid, stats = sync ~user ~branch r fb ~key in
              Ok (render_sync_stats verb uid stats)))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const run $ root_arg $ host_arg ~doc:"Server address."
               $ port_arg $ user_arg $ key_pos $ sync_branch_pos))

let push_cmd =
  sync_cmd "push"
    ~doc:"Replicate KEY/BRANCH from the local $(b,--root) store to a \
          running $(b,forkbase serve), shipping only the chunks the \
          server lacks (Merkle-DAG delta sync).  The server re-hashes \
          every chunk and fast-forwards the branch head atomically."
    ~verb:"pushed"
    (fun ~user ~branch r fb ~key -> Fb_net.Remote.push ~user ~branch r fb ~key)

let pull_cmd =
  sync_cmd "pull"
    ~doc:"Replicate KEY/BRANCH from a running $(b,forkbase serve) into \
          the local $(b,--root) store (created if absent), fetching only \
          missing chunks and re-hashing each against its announced id \
          before anything is stored."
    ~verb:"pulled"
    (fun ~user ~branch r fb ~key -> Fb_net.Remote.pull ~user ~branch r fb ~key)

let scrub_cmd =
  let dry_run_arg =
    Arg.(value & flag
         & info [ "dry-run" ] ~doc:"Report damage without deleting or repairing.")
  in
  let repair_from_arg =
    Arg.(value & opt (some string) None
         & info [ "repair-from" ] ~docv:"DIR"
             ~doc:"Another ForkBase root to restore damaged chunks from.")
  in
  let run root user backend dry_run repair_from =
    with_instance ~backend root (fun fb ->
        ignore user;
        (* The replica root is opened through Persistent so any provider
           (log, per-file chunks, …) can donate healthy bytes. *)
        let* replica =
          match repair_from with
          | None -> Ok None
          | Some dir ->
            let* rfb = Fb_core.Persistent.open_ ~root:dir () in
            Ok (Some (FB.store rfb))
        in
        (* Keep the damaged bytes for forensics before they are deleted. *)
        let qdir = Filename.concat root "quarantine" in
        let quarantine id raw =
          if not (Sys.file_exists qdir) then Sys.mkdir qdir 0o755;
          let oc =
            open_out_bin (Filename.concat qdir (Hash.to_hex id))
          in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc raw)
        in
        let report = FB.scrub ?replica ~quarantine ~dry_run fb in
        (* Under the log engine the chunk-level pass cannot see the log's
           own physical structure (record seals, checkpoint agreement,
           torn tails, crashed-compaction leftovers): fsck it too. *)
        let log_fsck, log_ok =
          match Fb_core.Persistent.log_handle ~root with
          | None -> ("", true)
          | Some h ->
            Fb_chunk.Log_store.sync h;
            (match Fb_chunk.Scrub.fsck_log ~root:(Filename.concat root "log") with
            | Error e -> (Printf.sprintf "log fsck failed: %s\n" e, false)
            | Ok r ->
              ( Format.asprintf "%a@." Fb_chunk.Scrub.pp_fsck_log r,
                Fb_chunk.Scrub.fsck_log_clean r ))
        in
        let ok = Fb_chunk.Scrub.clean report && log_ok in
        Ok
          (Format.asprintf "%a@.%s%s@."
             Fb_chunk.Scrub.pp_report report log_fsck
             (if ok then "store is clean"
              else if dry_run then "damage found (re-run without --dry-run)"
              else "damage remains: restore a replica and re-run")))
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Verify every stored chunk against its hash; quarantine damaged \
             ones (to ROOT/quarantine/), repair from --repair-from when it \
             holds healthy bytes, and report reachable chunks that cannot \
             be served.")
    Term.(ret (const run $ root_arg $ user_arg $ backend_arg $ dry_run_arg
               $ repair_from_arg))

let gc_cmd =
  let run root user backend =
    with_instance ~backend root (fun fb ->
        ignore user;
        let r = FB.gc fb in
        (* Under the log engine a sweep only appends tombstones; compaction
           rewrites the surviving records into a fresh generation and is
           what actually returns the bytes to the filesystem. *)
        let compacted =
          match Fb_core.Persistent.log_handle ~root with
          | None -> ""
          | Some h ->
            let before = Fb_chunk.Log_store.file_bytes h in
            Fb_chunk.Log_store.compact h;
            Printf.sprintf "log compacted: %d -> %d bytes (generation %d)\n"
              before
              (Fb_chunk.Log_store.file_bytes h)
              (Fb_chunk.Log_store.generation h)
        in
        Ok
          (Printf.sprintf "live: %d chunks; swept: %d chunks (%d bytes)\n%s"
             r.Fb_chunk.Gc.live_chunks r.Fb_chunk.Gc.swept_chunks
             r.Fb_chunk.Gc.swept_bytes compacted))
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Delete chunks unreachable from any branch head (and compact \
             the log engine's active generation).")
    Term.(ret (const run $ root_arg $ user_arg $ backend_arg))

let metrics_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the registry as JSON (including trace spans) instead \
                   of Prometheus text.")
  in
  let workload_arg =
    Arg.(value & opt int 0
         & info [ "workload" ] ~docv:"N"
             ~doc:"First run a synthetic in-memory workload ($(docv) puts, \
                   $(docv) gets and $(docv)/10 fork+merge cycles) so the \
                   dump carries live latency distributions.  The workload \
                   never touches the on-disk store.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Also write the span ring as Chrome trace_event JSON \
                   to $(docv) (open in chrome://tracing or Perfetto).")
  in
  let run root user json n trace_out =
    with_instance root (fun fb ->
        ignore user;
        (* Touching stats registers the persistent store's gauges. *)
        ignore (FB.stats fb);
        let ( let* ) = Result.bind in
        let* () =
          if n <= 0 then Ok ()
          else begin
            let store =
              Fb_chunk.Metered_store.wrap (Fb_chunk.Mem_store.create ())
            in
            let mem = FB.create store in
            let rec puts i =
              if i >= n then Ok ()
              else
                let* _ =
                  FB.put mem ~key:(Printf.sprintf "k%d" (i mod 16))
                    (Value.string (Printf.sprintf "value-%d" i))
                in
                puts (i + 1)
            in
            let* () = puts 0 in
            let rec gets i =
              if i >= n then Ok ()
              else
                let* _ = FB.get mem ~key:(Printf.sprintf "k%d" (i mod 16)) in
                gets (i + 1)
            in
            let* () = gets 0 in
            let rec merges i =
              if i >= n / 10 then Ok ()
              else begin
                let key = "shared" in
                let b = Printf.sprintf "side-%d" i in
                let* _ =
                  FB.put mem ~key
                    (Value.map_of_bindings (FB.store mem)
                       [ ("base", "v"); (Printf.sprintf "m%d" i, "x") ])
                in
                let* _ = FB.fork mem ~key ~new_branch:b in
                let* _ =
                  FB.put mem ~branch:b ~key
                    (Value.map_of_bindings (FB.store mem)
                       [ ("base", "v"); (Printf.sprintf "m%d" i, "x");
                         (Printf.sprintf "side%d" i, "y") ])
                in
                let* _ =
                  FB.merge mem ~key ~into:Branch.default_branch
                    ~from_branch:b
                in
                merges (i + 1)
              end
            in
            merges 0
          end
        in
        (match trace_out with
         | None -> ()
         | Some file ->
           let oc = open_out_bin file in
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () -> output_string oc (Fb_obs.Obs.dump_chrome_trace ())));
        Ok
          (if json then Fb_obs.Obs.dump_json ~include_spans:true ()
           else Fb_obs.Obs.dump_prometheus ()))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump the observability registry (counters, gauges, latency \
             histograms) in Prometheus text format, or JSON with --json.  \
             Use --workload N to exercise an in-memory instance first, \
             --trace-out FILE to export the span ring for chrome://tracing.")
    Term.(ret (const run $ root_arg $ user_arg $ json_arg $ workload_arg
               $ trace_out_arg))

(* ------------------------- top ------------------------- *)

(* Live node telemetry: poll METRICS-JSON over the typed Remote, rebuild
   histogram snapshots from the wire buckets, and diff consecutive
   samples into interval rates and quantiles (Obs.snapshot_sub) — the
   lifetime aggregates a node reports are useless for "what is it doing
   right now". *)
module Top = struct
  module Obs = Fb_obs.Obs
  module Json = Fb_types.Json

  type sample = {
    at : float;
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Obs.snapshot) list;
  }

  let parse_sample body =
    match Json.parse body with
    | Error e -> Error ("bad metrics-json: " ^ e)
    | Ok j ->
      let obj name =
        match Json.member name j with Some (Json.Object o) -> o | _ -> []
      in
      let number = function Json.Number n -> Some n | _ -> None in
      let counters =
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (number v))
          (obj "counters")
      in
      let gauges =
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (number v))
          (obj "gauges")
      in
      let hists =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Object fields ->
              let num name =
                match List.assoc_opt name fields with
                | Some (Json.Number n) -> n
                | _ -> 0.0
              in
              let buckets =
                match List.assoc_opt "buckets" fields with
                | Some (Json.Array pairs) ->
                  List.filter_map
                    (function
                      | Json.Array [ Json.Number i; Json.Number c ] ->
                        Some (int_of_float i, int_of_float c)
                      | _ -> None)
                    pairs
                | _ -> []
              in
              Some
                ( k,
                  Obs.snapshot_of_buckets
                    ~count:(int_of_float (num "count"))
                    ~sum:(num "sum") buckets )
            | _ -> None)
          (obj "histograms")
      in
      Ok { at = Unix.gettimeofday (); counters; gauges; hists }

  let fetch r =
    match Fb_net.Remote.raw r [ "metrics-json" ] with
    | Error e -> Error (Errors.to_string e)
    | Ok body -> parse_sample body

  let assoc name l = Option.value (List.assoc_opt name l) ~default:0.0

  let fmt_seconds v =
    if v <= 0.0 then "-"
    else if v >= 1.0 then Printf.sprintf "%.2f s" v
    else if v >= 1e-3 then Printf.sprintf "%.2f ms" (v *. 1e3)
    else Printf.sprintf "%.0f us" (v *. 1e6)

  let fmt_bytes v =
    if v >= 1048576.0 then Printf.sprintf "%.1f MiB" (v /. 1048576.0)
    else if v >= 1024.0 then Printf.sprintf "%.1f KiB" (v /. 1024.0)
    else Printf.sprintf "%.0f B" v

  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let ends_with ~suffix s =
    let n = String.length s and m = String.length suffix in
    n >= m && String.sub s (n - m) m = suffix

  (* fb.net.<verb>_seconds -> <verb> *)
  let verb_of_hist name =
    let prefix = "fb.net." and suffix = "_seconds" in
    if starts_with ~prefix name && ends_with ~suffix name then
      Some
        (String.sub name (String.length prefix)
           (String.length name - String.length prefix - String.length suffix))
    else None

  let render ~target prev cur =
    let dt = Float.max 1e-9 (cur.at -. prev.at) in
    let cdelta name = Float.max 0.0 (assoc name cur.counters -. assoc name prev.counters) in
    let buf = Buffer.create 2048 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    line "forkbase top — %s — interval %.1f s" target dt;
    line "requests: %6.1f/s   batches: %5.1f/s   errors: %4.1f/s   conns: %.0f"
      (cdelta "fb.net.frames" /. dt)
      (cdelta "fb.net.batches" /. dt)
      ((cdelta "fb.net.errors" +. cdelta "fb.net.request_errors") /. dt)
      (assoc "fb.net.connections_active" cur.gauges);
    line "";
    line "%-14s %10s %10s %10s %10s" "verb" "ops/s" "p50" "p99" "count";
    let rows =
      List.filter_map
        (fun (name, snap) ->
          match verb_of_hist name with
          | None -> None
          | Some verb ->
            let prev_snap =
              Option.value (List.assoc_opt name prev.hists)
                ~default:Obs.empty_snapshot
            in
            let d = Obs.snapshot_sub snap prev_snap in
            let n = Obs.snapshot_total d in
            if n = 0 && Obs.snapshot_total snap = 0 then None
            else Some (verb, n, d, snap))
        cur.hists
    in
    let rows = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a) rows in
    List.iter
      (fun (verb, n, d, lifetime) ->
        let q snap p =
          if Obs.snapshot_total snap = 0 then "-"
          else fmt_seconds (Obs.snapshot_quantile snap p)
        in
        if n > 0 then
          line "%-14s %10.1f %10s %10s %10d" verb
            (float_of_int n /. dt)
            (q d 0.5) (q d 0.99) (Obs.snapshot_total lifetime)
        else
          line "%-14s %10s %10s %10s %10d" verb "-" (q lifetime 0.5)
            (q lifetime 0.99)
            (Obs.snapshot_total lifetime))
      rows;
    let section title picks =
      if picks <> [] then begin
        line "";
        line "%s" title;
        List.iter (fun (k, v) -> line "  %-40s %s" k v) picks
      end
    in
    section "caches"
      (List.filter_map
         (fun (k, v) ->
           if ends_with ~suffix:".hit_ratio" k then
             Some (k, Printf.sprintf "%5.1f%% hits" (v *. 100.0))
           else None)
         cur.gauges);
    section "log store"
      (List.filter_map
         (fun (k, v) ->
           if not (starts_with ~prefix:"log." k) then None
           else if ends_with ~suffix:".generation" k
                   || ends_with ~suffix:".live_chunks" k
                   || ends_with ~suffix:".compactions" k then
             Some (k, Printf.sprintf "%.0f" v)
           else if ends_with ~suffix:".file_bytes" k
                   || ends_with ~suffix:".synced_bytes" k
                   || ends_with ~suffix:".garbage_bytes" k then
             Some (k, fmt_bytes v)
           else None)
         cur.gauges);
    let wait = assoc "fb.rwlock.wait_seconds" (List.map (fun (k, s) -> (k, float_of_int (Obs.snapshot_total s))) cur.hists) in
    if wait > 0.0 then begin
      match List.assoc_opt "fb.rwlock.wait_seconds" cur.hists with
      | Some snap ->
        let prev_snap =
          Option.value
            (List.assoc_opt "fb.rwlock.wait_seconds" prev.hists)
            ~default:Obs.empty_snapshot
        in
        let d = Obs.snapshot_sub snap prev_snap in
        let use = if Obs.snapshot_total d > 0 then d else snap in
        line "";
        line "lock wait: p50 %s  p99 %s"
          (fmt_seconds (Obs.snapshot_quantile use 0.5))
          (fmt_seconds (Obs.snapshot_quantile use 0.99))
      | None -> ()
    end;
    Buffer.contents buf

  (* --demo: an in-process server over a Mem store plus a background
     workload, so the dashboard (and make check) can run with no
     external node to point at. *)
  let with_demo f =
    let store = Fb_chunk.Metered_store.wrap (Fb_chunk.Mem_store.create ()) in
    let fb = FB.create store in
    let config =
      { Fb_net.Server.default_config with port = 0; save_every_s = 0.0 }
    in
    match Fb_net.Server.start ~config fb with
    | Error e -> `Error (false, "demo server: " ^ e)
    | Ok srv ->
      let port = Fb_net.Server.port srv in
      let stop_flag = Atomic.make false in
      let worker =
        Thread.create
          (fun () ->
            match Fb_net.Remote.connect ~port ~user:"demo" () with
            | Error _ -> ()
            | Ok r ->
              let i = ref 0 in
              while not (Atomic.get stop_flag) do
                let key = Printf.sprintf "demo-%d" (!i mod 8) in
                ignore (Fb_net.Remote.put r ~key (Printf.sprintf "v%d" !i));
                ignore (Fb_net.Remote.get r ~key);
                incr i;
                Thread.delay 0.002
              done;
              Fb_net.Remote.close r)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop_flag true;
          Thread.join worker;
          Fb_net.Server.stop srv)
        (fun () -> f port)

  let run host port user interval once demo =
    let interval = Float.max 0.1 interval in
    let poll target port =
      match Fb_net.Remote.connect ~host ~port ~user () with
      | Error e -> `Error (false, Errors.to_string e)
      | Ok r ->
        Fun.protect
          ~finally:(fun () -> Fb_net.Remote.close r)
          (fun () ->
            match fetch r with
            | Error e -> `Error (false, e)
            | Ok first ->
              let rec loop prev =
                Thread.delay interval;
                match fetch r with
                | Error e -> `Error (false, e)
                | Ok cur ->
                  if not once then print_string "\027[H\027[2J";
                  print_string (render ~target prev cur);
                  flush stdout;
                  if once then `Ok () else loop cur
              in
              loop first)
    in
    if demo then with_demo (fun p -> poll (Printf.sprintf "demo:%d" p) p)
    else poll (Printf.sprintf "%s:%d" host port) port
end

let top_cmd =
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "i"; "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh interval (also the window of the rate/quantile \
                   deltas).")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render a single interval and exit (no screen clearing) \
                   — for scripts and smoke tests.")
  in
  let demo_arg =
    Arg.(value & flag
         & info [ "demo" ]
             ~doc:"Start a throwaway in-memory server with a synthetic \
                   workload and watch it — a self-contained demo needing \
                   no running node.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live telemetry of a running $(b,forkbase serve): ops/s and \
             interval p50/p99 per verb (from METRICS-JSON histogram \
             snapshots), cache hit ratios, log-store gauges and lock \
             wait, refreshed every --interval seconds.")
    Term.(ret (const Top.run $ host_arg ~doc:"Server address." $ port_arg
               $ user_arg $ interval_arg $ once_arg $ demo_arg))

(* ------------------------- cluster tooling -------------------------
   Spawn/inspect/stop a local set of forkbase serve processes and record
   the topology in ROOT/CLUSTER — the file the "cluster" store provider
   auto-detects, so `forkbase serve --backend cluster --root ROOT` (the
   router) needs no further configuration. *)

module Cluster_cli = struct
  module C = Fb_net.Cluster

  let node_root root i = Filename.concat root (Printf.sprintf "node-%d" i)

  let mkdir_p dir =
    let rec go d =
      if d <> "" && d <> "/" && not (Sys.file_exists d) then begin
        go (Filename.dirname d);
        (try Sys.mkdir d 0o755 with Sys_error _ -> ())
      end
    in
    go dir

  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error _ -> false

  (* One serve child per node, stdio to ROOT/node-<i>.log so crashes
     leave a trail.  The child is a full daemon: its own root, log
     engine, periodic table saves. *)
  let spawn_node root i (node : C.node) fsync =
    let nroot = node_root root i in
    mkdir_p nroot;
    let log_fd =
      Unix.openfile
        (nroot ^ ".log")
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    let null_fd = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () ->
        Unix.close log_fd;
        Unix.close null_fd)
      (fun () ->
        Unix.create_process Sys.executable_name
          [| "forkbase"; "serve"; "--root"; nroot; "--host"; node.C.host;
             "--port"; string_of_int node.C.port; "--save-every"; "1";
             "--fsync"; string_of_bool fsync |]
          null_fd log_fd log_fd)

  let wait_ready ?(timeout_s = 10.0) (node : C.node) =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match
        Fb_net.Remote.connect ~host:node.C.host ~port:node.C.port
          ~timeout_s:1.0 ()
      with
      | Ok r ->
        Fb_net.Remote.close r;
        true
      | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Thread.delay 0.05;
          go ()
        end
    in
    go ()

  let read_topology root =
    let path = C.cluster_file root in
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "no %s — run forkbase cluster start first" path)
    else C.read_topology path

  let start root count base_port replicas fsync =
    if count < 1 then `Error (false, "cluster start: --count must be >= 1")
    else begin
      mkdir_p root;
      let nodes =
        List.init count (fun i ->
            { C.host = "127.0.0.1"; port = base_port + i })
      in
      let pids =
        List.mapi (fun i node -> spawn_node root i node fsync) nodes
      in
      let topo =
        { C.nodes = List.combine nodes (List.map Option.some pids);
          t_replicas = Some replicas;
          t_virtual_nodes = None }
      in
      match C.write_topology (C.cluster_file root) topo with
      | Error e -> `Error (false, "cluster start: " ^ e)
      | Ok () ->
        let ready = List.map wait_ready nodes in
        List.iteri
          (fun i ((node : C.node), pid) ->
            Printf.printf "node %d: %s pid=%d %s\n" i (C.render_node node)
              pid
              (if List.nth ready i then "up" else "NOT RESPONDING"))
          (List.combine nodes pids);
        if List.for_all Fun.id ready then begin
          Printf.printf
            "cluster of %d nodes up (replicas=%d); route with: forkbase \
             serve --backend cluster --root %s\n"
            count replicas root;
          `Ok ()
        end
        else
          `Error
            ( false,
              "some nodes failed to come up — see ROOT/node-*.log" )
    end

  let status root =
    match read_topology root with
    | Error e -> `Error (false, e)
    | Ok topo ->
      let any_down = ref false in
      List.iteri
        (fun i ((node : C.node), pid) ->
          let reachable, detail =
            match
              Fb_net.Remote.connect ~host:node.C.host ~port:node.C.port
                ~timeout_s:2.0 ()
            with
            | Error e -> (false, Errors.to_string e)
            | Ok r ->
              Fun.protect
                ~finally:(fun () -> Fb_net.Remote.close r)
                (fun () ->
                  match Fb_net.Remote.raw r [ "chunk-stat" ] with
                  | Ok payload -> (true, payload)
                  | Error e -> (true, Errors.to_string e))
          in
          if not reachable then any_down := true;
          Printf.printf "node %d: %s %s%s %s\n" i (C.render_node node)
            (if reachable then "up" else "down")
            (match pid with
             | Some pid ->
               Printf.sprintf " pid=%d%s" pid
                 (if pid_alive pid then "" else " (dead)")
             | None -> "")
            detail)
        topo.C.nodes;
      if !any_down then `Error (false, "some nodes are down") else `Ok ()

  let signal_node ~hard ((node : C.node), pid) =
    match pid with
    | None ->
      Printf.printf "%s: no recorded pid (started externally?)\n"
        (C.render_node node);
      false
    | Some pid ->
      if pid_alive pid then begin
        (try Unix.kill pid (if hard then Sys.sigkill else Sys.sigterm)
         with Unix.Unix_error _ -> ());
        Printf.printf "%s pid=%d: sent %s\n" (C.render_node node) pid
          (if hard then "SIGKILL" else "SIGTERM");
        true
      end
      else begin
        Printf.printf "%s pid=%d: already dead\n" (C.render_node node) pid;
        false
      end

  let stop root hard =
    match read_topology root with
    | Error e -> `Error (false, e)
    | Ok topo ->
      List.iter (fun n -> ignore (signal_node ~hard n)) topo.C.nodes;
      (* Keep the topology (the provider still routes to these
         addresses on restart) but drop the dead pids. *)
      let topo =
        { topo with C.nodes = List.map (fun (n, _) -> (n, None)) topo.C.nodes }
      in
      (match C.write_topology (C.cluster_file root) topo with
      | Ok () -> ()
      | Error e -> Printf.eprintf "warning: %s\n" e);
      `Ok ()

  let kill root index hard =
    match read_topology root with
    | Error e -> `Error (false, e)
    | Ok topo -> (
      match List.nth_opt topo.C.nodes index with
      | None ->
        `Error
          ( false,
            Printf.sprintf "no node %d (cluster has %d)" index
              (List.length topo.C.nodes) )
      | Some n ->
        ignore (signal_node ~hard n);
        `Ok ())
end

let cluster_cmd =
  let count_arg =
    Arg.(value & opt int 3
         & info [ "count" ] ~docv:"N" ~doc:"Nodes to spawn.")
  in
  let base_port_arg =
    Arg.(value & opt int 7461
         & info [ "base-port" ] ~docv:"PORT"
             ~doc:"First node port; node $(i,i) listens on $(docv)+$(i,i).")
  in
  let hard_arg =
    Arg.(value & flag
         & info [ "hard" ]
             ~doc:"SIGKILL instead of SIGTERM (simulates a crash: no \
                   final save, recovery exercised on restart).")
  in
  let replicas_default_arg =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"W"
             ~doc:"Copies of each chunk, recorded in the CLUSTER file.")
  in
  let index_pos =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"NODE" ~doc:"Node index (0-based).")
  in
  let start =
    Cmd.v
      (Cmd.info "start"
         ~doc:"Spawn N local $(b,forkbase serve) nodes (roots \
               ROOT/node-$(i,i), logs ROOT/node-$(i,i).log) and record \
               the topology in ROOT/CLUSTER.")
      Term.(ret (const Cluster_cli.start $ root_arg $ count_arg
                 $ base_port_arg $ replicas_default_arg $ fsync_arg))
  in
  let status =
    Cmd.v
      (Cmd.info "status"
         ~doc:"Probe every node in ROOT/CLUSTER and print \
               up/down + physical chunk counts.")
      Term.(ret (const Cluster_cli.status $ root_arg))
  in
  let stop =
    Cmd.v
      (Cmd.info "stop"
         ~doc:"Stop every node recorded in ROOT/CLUSTER (SIGTERM, or \
               SIGKILL with $(b,--hard)); the topology file is kept for \
               restarts.")
      Term.(ret (const Cluster_cli.stop $ root_arg $ hard_arg))
  in
  let kill =
    Cmd.v
      (Cmd.info "kill"
         ~doc:"Kill one node by index — the fault-injection lever for \
               failover drills ($(b,--hard) for SIGKILL).")
      Term.(ret (const Cluster_cli.kill $ root_arg $ index_pos $ hard_arg))
  in
  Cmd.group
    (Cmd.info "cluster"
       ~doc:"Manage a local set of $(b,forkbase serve) storage nodes \
             (spawn, status, stop, kill) behind the $(b,cluster) store \
             provider.")
    [ start; status; stop; kill ]

let main =
  let doc = "Git-like, tamper-evident storage for branchable applications" in
  let info = Cmd.info "forkbase" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ put_cmd; get_cmd; head_cmd; latest_cmd; list_cmd; log_cmd; meta_cmd;
      branch_cmd; rename_cmd; delete_branch_cmd; diff_cmd; merge_cmd;
      verify_cmd; export_cmd; bundle_cmd; unbundle_cmd; history_cmd;
      tag_cmd; tags_cmd;
      serve_cmd; client_cmd; watch_cmd; push_cmd; pull_cmd; stat_cmd; gc_cmd;
      scrub_cmd; cluster_cmd; metrics_cmd; top_cmd ]

let () = exit (Cmd.eval main)
