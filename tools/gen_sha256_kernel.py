#!/usr/bin/env python3
"""Regenerate the unrolled SHA-256 compression function in lib/hash/sha256.ml.

The kernel is emitted between the GENERATED-KERNEL-BEGIN/END markers.  Design
notes live in DESIGN.md §8; the short version:

- Every word is an Int64 local in SSA form; ocamlopt's boxed-number unboxing
  keeps the whole body in registers/stack slots (no heap traffic).  The body
  must stay branch-free: a bounds-check branch would defeat the unboxing.
- State words and schedule words are kept in "doubled" form
  y = x | (x << 32), so every 32-bit rotation is a single 64-bit shift and
  the bitwise ch/maj identities hold in both halves.
- Sums may carry garbage into the high half (carries only propagate upward);
  the mask folded into the next doubling restores canonical form.
"""

K = [0x428a2f98,0x71374491,0xb5c0fbcf,0xe9b5dba5,0x3956c25b,0x59f111f1,0x923f82a4,0xab1c5ed5,
0xd807aa98,0x12835b01,0x243185be,0x550c7dc3,0x72be5d74,0x80deb1fe,0x9bdc06a7,0xc19bf174,
0xe49b69c1,0xefbe4786,0x0fc19dc6,0x240ca1cc,0x2de92c6f,0x4a7484aa,0x5cb0a9dc,0x76f988da,
0x983e5152,0xa831c66d,0xb00327c8,0xbf597fc7,0xc6e00bf3,0xd5a79147,0x06ca6351,0x14292967,
0x27b70a85,0x2e1b2138,0x4d2c6dfc,0x53380d13,0x650a7354,0x766a0abb,0x81c2c92e,0x92722c85,
0xa2bfe8a1,0xa81a664b,0xc24b8b70,0xc76c51a3,0xd192e819,0xd6990624,0xf40e3585,0x106aa070,
0x19a4c116,0x1e376c08,0x2748774c,0x34b0bcb5,0x391c0cb3,0x4ed8aa4a,0x5b9cca4f,0x682e6ff3,
0x748f82ee,0x78a5636f,0x84c87814,0x8cc70208,0x90befffa,0xa4506ceb,0xbef9a3f7,0xc67178f2]

def emit():
    out = []
    o = out.append
    o("let compress_block (h : int array) (b : Bytes.t) pos =")
    # Load 8-byte pairs, byteswap once, and bind both the plain and the
    # doubled form of each of the 16 message words.
    for p in range(8):
        hi, lo = 2 * p, 2 * p + 1
        o(f"  let q{p} = bswap64 (get64u b (pos + {8*p})) in")
        o(f"  let w{hi} = q{p} >>> 32 in")
        o(f"  let w{lo} = q{p} &&& m32 in")
        o(f"  let dw{hi} = w{hi} ||| (q{p} &&& mh32) in")
        o(f"  let dw{lo} = w{lo} ||| (q{p} <<< 32) in")
    for i, v in enumerate(['a0','b0','c0','d0','e0','f0','g0','h0']):
        o(f"  let {v} = Int64.of_int (Array.unsafe_get h {i}) in")
    for v in ['a0','b0','c0','d0','e0','f0','g0','h0']:
        o(f"  let {v} = {v} ||| ({v} <<< 32) in")
    vars = ['a0','b0','c0','d0','e0','f0','g0','h0']
    for i in range(64):
        if i >= 16:
            x = f"dw{i-15}"; y = f"dw{i-2}"
            o(f"  let w{i} = (dw{i-16} >>> 32) +% (({x} >>> 7) ^^^ ({x} >>> 18) ^^^ ({x} >>> 35)) +% (dw{i-7} >>> 32) +% (({y} >>> 17) ^^^ ({y} >>> 19) ^^^ ({y} >>> 42)) in")
            if i <= 61:
                o(f"  let dw{i} = (w{i} &&& m32) ||| (w{i} <<< 32) in")
        a,b,c,d,e,f,g,h = vars
        t = f"t{i}"; nd = f"d{i+1}"; nh = f"h{i+1}"
        o(f"  let {t} = {h} +% (({e} >>> 6) ^^^ ({e} >>> 11) ^^^ ({e} >>> 25)) +% ({g} ^^^ ({e} &&& ({f} ^^^ {g}))) +% {K[i]}L +% w{i} in")
        o(f"  let x{nd} = {d} +% {t} in")
        o(f"  let {nd} = (x{nd} &&& m32) ||| (x{nd} <<< 32) in")
        o(f"  let x{nh} = {t} +% (({a} >>> 2) ^^^ ({a} >>> 13) ^^^ ({a} >>> 22)) +% (({a} &&& {b}) ||| ({c} &&& ({a} ||| {b}))) in")
        o(f"  let {nh} = (x{nh} &&& m32) ||| (x{nh} <<< 32) in")
        vars = [nh, a, b, c, nd, e, f, g]
    a,b,c,d,e,f,g,h = vars
    for i, v in enumerate([a,b,c,d,e,f,g,h]):
        o(f"  Array.unsafe_set h {i} ((Array.unsafe_get h {i} + Int64.to_int ({v} &&& m32)) land 0xffffffff);")
    o("  ()")
    return "\n".join(out)

BEGIN = "(* GENERATED-KERNEL-BEGIN: tools/gen_sha256_kernel.py *)"
END = "(* GENERATED-KERNEL-END *)"

if __name__ == "__main__":
    path = "lib/hash/sha256.ml"
    src = open(path).read()
    pre, rest = src.split(BEGIN)
    _, post = rest.split(END)
    open(path, "w").write(pre + BEGIN + "\n" + emit() + "\n" + END + post)
    print("regenerated", path)
