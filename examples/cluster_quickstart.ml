(* A three-node cluster surviving a node kill.

   Three live forkbase server nodes hold the chunks; a router instance
   places every chunk on W=2 of them by consistent hashing and fails
   reads over when an owner dies.  The same topology runs across real
   machines with the CLI:

     forkbase cluster start --root /srv/fb --count 3   # the storage nodes
     forkbase serve --backend cluster --root /srv/fb   # the router

   Here everything is in-process so the example is self-contained.

     dune exec examples/cluster_quickstart.exe *)

module FB = Fb_core.Forkbase
module Value = Fb_types.Value
module Server = Fb_net.Server
module Cluster = Fb_net.Cluster

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fb_core.Errors.to_string e)

let () =
  (* Three storage nodes, each a complete forkbase server. *)
  let config = { Server.default_config with port = 0; save_every_s = 0.0 } in
  let node () =
    match Server.start ~config (FB.create (Fb_chunk.Mem_store.create ())) with
    | Ok srv -> srv
    | Error e -> failwith e
  in
  let servers = Array.init 3 (fun _ -> node ()) in
  let nodes =
    Array.to_list
      (Array.map
         (fun srv -> { Cluster.host = "127.0.0.1"; port = Server.port srv })
         servers)
  in
  (* The router: a normal ForkBase instance whose chunk store hashes
     every chunk onto 2 of the 3 nodes. *)
  let cluster = ok (Cluster.connect ~replicas:2 ~nodes ()) in
  let fb = FB.create (Cluster.store cluster) in
  let keys = List.init 20 (Printf.sprintf "doc-%02d") in
  List.iter
    (fun key -> ignore (ok (FB.put fb ~key (Value.string ("payload of " ^ key)))))
    keys;
  (* Kill a node outright: every chunk still has a live replica, so the
     reads below are served by failover — the application never notices. *)
  Server.stop servers.(1);
  List.iter
    (fun key ->
      match ok (FB.get fb ~key) with
      | Value.Primitive (Fb_types.Primitive.String s) ->
        assert (s = "payload of " ^ key)
      | _ -> assert false)
    keys;
  Printf.printf "all %d keys readable with node 1 dead\n" (List.length keys);
  let stats =
    Fb_chunk.Cluster_store.cluster_stats (Cluster.cluster cluster)
  in
  Printf.printf "reads served by a fallback replica: %d\n"
    stats.Fb_chunk.Cluster_store.failover_reads;
  Cluster.close cluster;
  Array.iter Server.stop servers
