(* Collaborative analytics with branch-based access control — the Fig. 1
   scenario over the network: two administrators share a dataset behind a
   ForkBase server; analysts connect remotely, work on isolated branches
   they own, and results flow back through reviewed merges.

   Everything below the server setup speaks the typed Remote API: each
   participant holds a Remote handle, and failures arrive as the same
   typed Errors.t a local caller would get — Permission_denied is matched
   structurally, not parsed out of prose.

     dune exec examples/collaborative_analytics.exe *)

module FB = Fb_core.Forkbase
module Acl = Fb_core.Acl
module Errors = Fb_core.Errors
module Remote = Fb_net.Remote
module Server = Fb_net.Server

let ok = function
  | Ok v -> v
  | Error e -> failwith (Errors.to_string e)

let expect_denied what = function
  | Error (Errors.Permission_denied _) ->
    Printf.printf "  denied (as intended): %s\n" what
  | Ok _ -> failwith ("should have been denied: " ^ what)
  | Error e -> failwith (Errors.to_string e)

let () =
  (* Admin A owns everything; admin B administers the sales dataset.
     Analysts carol and dave get read on master and admin on their own
     branches — the branch-based access control of the demo. *)
  let acl = Acl.create () in
  Acl.grant acl ~user:"adminA" ~key:"*" ~branch:"*" Acl.Admin;
  Acl.grant acl ~user:"adminB" ~key:"sales" ~branch:"*" Acl.Admin;
  List.iter
    (fun analyst ->
      Acl.grant acl ~user:analyst ~key:"sales" ~branch:"master" Acl.Read;
      Acl.grant acl ~user:analyst ~key:"sales" ~branch:(analyst ^ "-dev")
        Acl.Admin)
    [ "carol"; "dave" ];
  let fb = FB.create ~acl (Fb_chunk.Mem_store.create ()) in

  (* One server, striped read/write locking; an ephemeral port so the
     example never collides with a real daemon. *)
  let config =
    { Server.default_config with port = 0; save_every_s = 0.0 }
  in
  let srv =
    match Server.start ~config fb with
    | Ok s -> s
    | Error e -> failwith e
  in
  let port = Server.port srv in
  Printf.printf "server up on 127.0.0.1:%d\n" port;
  let connect user = ok (Remote.connect ~port ~user ()) in
  let adminA = connect "adminA" in
  let adminB = connect "adminB" in
  let carol = connect "carol" in
  let dave = connect "dave" in
  let mallory = connect "mallory" in
  let all = [ adminA; adminB; carol; dave; mallory ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter Remote.close all;
      Server.stop srv)
    (fun () ->
      (* Admin A loads the shared dataset. *)
      Printf.printf "adminA loads sales/master\n";
      ignore
        (ok
           (Remote.put_csv adminA ~key:"sales"
              "region,revenue,units\nnorth,1200,40\nsouth,800,25\neast,1500,55\nwest,900,31\n"));

      (* Analysts cannot touch master — the denial is typed even though
         it crossed the wire. *)
      expect_denied "carol writes master"
        (Remote.put carol ~key:"sales" "nope");

      (* ...but fork their own branches and work in isolation. *)
      Printf.printf "carol and dave fork private branches\n";
      ignore (ok (Remote.fork carol ~key:"sales" ~new_branch:"carol-dev"));
      ignore (ok (Remote.fork dave ~key:"sales" ~new_branch:"dave-dev"));

      (* Carol cleans the north region; Dave adds a missing region.
         Disjoint rows: the three-way merge takes both without conflict. *)
      ignore
        (ok
           (Remote.put_csv carol ~branch:"carol-dev" ~key:"sales"
              "region,revenue,units\nnorth,1200,42\nsouth,800,25\neast,1500,55\nwest,900,31\n"));
      ignore
        (ok
           (Remote.put_csv dave ~branch:"dave-dev" ~key:"sales"
              "region,revenue,units\nnorth,1200,40\nsouth,800,25\neast,1500,55\nwest,900,31\ncentral,650,18\n"));

      (* Each analyst's diff against master is visible to the admins. *)
      List.iter
        (fun branch ->
          Printf.printf "\nmaster vs %s:\n%s\n" branch
            (ok
               (Remote.diff adminB ~key:"sales" ~branch1:"master"
                  ~branch2:branch)))
        [ "carol-dev"; "dave-dev" ];

      (* Admin B reviews and merges both. *)
      Printf.printf "\nadminB merges carol-dev, then dave-dev\n";
      ignore
        (ok
           (Remote.merge adminB ~key:"sales" ~into:"master"
              ~from_branch:"carol-dev"));
      ignore
        (ok
           (Remote.merge adminB ~key:"sales" ~into:"master"
              ~from_branch:"dave-dev"));
      print_string (ok (Remote.get adminB ~key:"sales"));

      (* One BATCH frame fetches every branch head under a single lock
         acquisition — the wire-level amortization for dashboards that
         refresh many panes at once. *)
      Printf.printf "\nbranch heads (one batch frame):\n";
      (match
         ok
           (Remote.batch adminB
              (List.map
                 (fun branch -> Remote.Head { key = "sales"; branch })
                 [ "master"; "carol-dev"; "dave-dev" ]))
       with
      | replies ->
        List.iter2
          (fun branch reply ->
            match reply with
            | Ok (Remote.Uid uid) ->
              Printf.printf "  %-10s %s\n" branch
                (String.sub (FB.version_string uid) 0 12)
            | Ok (Remote.Value _) | Error _ ->
              Printf.printf "  %-10s ?\n" branch)
          [ "master"; "carol-dev"; "dave-dev" ]
          replies);

      (* The provenance of the result is the version DAG. *)
      Printf.printf "\nhistory of sales/master:\n";
      List.iter
        (fun line -> Printf.printf "  %s\n" line)
        (ok (Remote.log adminB ~key:"sales"));

      (* Mallory, who has no grants, sees nothing at all. *)
      expect_denied "mallory reads sales" (Remote.get mallory ~key:"sales");
      assert (ok (Remote.list_keys mallory) = []);
      Printf.printf "\nmallory sees no keys; collaboration stayed contained.\n")
