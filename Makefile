# Convenience entry points; dune is the real build system.

.PHONY: all build test bench bench-hotpath bench-net bench-durability bench-obs bench-sync bench-cluster check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Hot-path microbenchmarks (SHA-256 kernel, chunker scan, node cache);
# writes BENCH_hotpath.json.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# Network benchmarks.  net-c10k: idle+active connection sweep of the
# event-loop engine vs the thread-per-connection engine plus pipelined
# depth 1/8/32 on one connection; writes BENCH_net.json.  net-scaling:
# reader sweep 1->8 over the striped read/write locking,
# striped-vs-coarse write p50, and 32-op BATCH frames vs single round
# trips; writes BENCH_net_scaling.json.  (The older mixed-workload soak
# is `-- net`, writing BENCH_net_mixed.json.)
bench-net:
	dune exec bench/main.exe -- net-c10k
	dune exec bench/main.exe -- net-scaling

# Durability benchmark: sustained fully-durable puts through the pack
# log's group commit vs one-fsync-per-chunk in the directory backend,
# recovery time with/without a checkpoint, and a crash-matrix smoke;
# writes BENCH_durability.json and fails if the speedup drops below 5x.
bench-durability:
	dune exec bench/main.exe -- durability

# Delta-sync benchmark: Merkle-DAG push/pull of ~1M records over
# loopback, then a 1%-edit update — measures bytes on the wire for the
# delta vs the full transfer; writes BENCH_sync.json and fails if the
# delta ships more than 10% of the full-transfer bytes.
bench-sync:
	dune exec bench/main.exe -- sync

# Cluster benchmark: 3 live forkbase nodes over TCP at W=2 — read
# availability and failover latency under a node kill, read-repair
# convergence after an empty restart, and the rebalance delta vs the
# ideal hash-ring delta on membership growth; writes BENCH_cluster.json
# and fails if availability drops below 99% or rebalance moves anything
# beyond the ring delta.
bench-cluster:
	dune exec bench/main.exe -- cluster

# Observability benchmark: instrumentation overhead (warmed, best-of-3),
# operation latency distributions, wire tracing cost enabled vs FB_OBS=0;
# writes BENCH_obs.json.  (`-- obs-quick` is the smoke variant below: it
# shrinks the sweeps and does not overwrite the artifact.)
bench-obs:
	dune exec bench/main.exe -- obs

# The pre-commit gate: full build, full test suite, the observability
# smoke (instrumentation overhead + histogram/exposition/tracing smoke,
# artifact untouched), a ~1-second hot-path sanity run (kernel
# equivalence + cache on/off smoke), a ~1-second network smoke (2
# concurrent clients over loopback, asserts zero dropped/corrupt frames
# and a clean shutdown), a ~1-second concurrency smoke (reader scaling,
# striped-vs-coarse writes, BATCH), an event-loop smoke (event vs
# threaded connection sweep, SUBSCRIBE push, pipelined depths — fails if
# the event engine drops a connection), a sub-second durability smoke
# (group commit vs per-chunk fsync, recovery replay, truncation-point
# crash matrix), a ~1-second delta-sync smoke (full push/pull then a
# 1%-edit delta over loopback, verifying the frontier cut), a ~1-second
# cluster smoke (3 live nodes at W=2: node kill, failover reads, read
# repair, rebalance-equals-ring-delta), and one `forkbase top` render
# against a throwaway in-process node (exercises the METRICS-JSON wire
# path end to end).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- obs-quick
	dune exec bench/main.exe -- hotpath-quick
	dune exec bench/main.exe -- net-quick
	dune exec bench/main.exe -- net-scaling-quick
	dune exec bench/main.exe -- net-c10k-quick
	dune exec bench/main.exe -- durability-quick
	dune exec bench/main.exe -- sync-quick
	dune exec bench/main.exe -- cluster-quick
	dune exec bin/forkbase_cli.exe -- top --demo --once --interval 0.5

clean:
	dune clean
