# Convenience entry points; dune is the real build system.

.PHONY: all build test bench bench-hotpath bench-net check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Hot-path microbenchmarks (SHA-256 kernel, chunker scan, node cache);
# writes BENCH_hotpath.json.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# Network service benchmark: N concurrent TCP clients against a live
# server, mixed put/get/branch/merge; writes BENCH_net.json.
bench-net:
	dune exec bench/main.exe -- net

# The pre-commit gate: full build, full test suite, the observability
# self-test (instrumentation overhead + histogram/exposition smoke), a
# ~1-second hot-path sanity run (kernel equivalence + cache on/off smoke),
# and a ~1-second network smoke (2 concurrent clients over loopback,
# asserts zero dropped/corrupt frames and a clean shutdown).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- obs
	dune exec bench/main.exe -- hotpath-quick
	dune exec bench/main.exe -- net-quick

clean:
	dune clean
