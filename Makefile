# Convenience entry points; dune is the real build system.

.PHONY: all build test bench bench-hotpath check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Hot-path microbenchmarks (SHA-256 kernel, chunker scan, node cache);
# writes BENCH_hotpath.json.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# The pre-commit gate: full build, full test suite, the observability
# self-test (instrumentation overhead + histogram/exposition smoke), and a
# ~1-second hot-path sanity run (kernel equivalence + cache on/off smoke).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- obs
	dune exec bench/main.exe -- hotpath-quick

clean:
	dune clean
