# Convenience entry points; dune is the real build system.

.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The pre-commit gate: full build, full test suite, and the observability
# self-test (instrumentation overhead + histogram/exposition smoke).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- obs

clean:
	dune clean
